// EcdfBTree: the paper's disk-based, dynamic extensions of the ECDF-tree
// (Sec. 4) — the ECDF-Bu-tree and the ECDF-Bq-tree.
//
// A d-dimensional ECDF-B-tree is a B+-tree (the *main branch*) over the
// points' first coordinate. Every internal record carries a *border*: a
// (d-1)-dimensional ECDF-B-tree over projected points. The two variants
// differ in what a border contains (Fig. 6):
//
//   - ECDF-Bu ("update-optimized"): border i holds the points of
//     subtree(e_i). An insert touches ONE border per level; a query must add
//     up the borders of ALL children left of the search path.
//   - ECDF-Bq ("query-optimized"): border i holds the points of subtrees
//     e_0..e_i (a prefix). A query adds ONE border per level; an insert must
//     update every border at or right of the search path, and splits rebuild
//     prefix borders wholesale — the price of O(log_B^d n) queries.
//
// The base case (dims == 1) is the aggregate B+-tree. Bulk-loading builds
// the main branch bottom-up and bulk-loads each border from the contiguous
// sorted range of points it covers, exactly as sketched in Sec. 4.
//
// Like all aggregate indexes here, the tree stores group sums; deleting a
// point is inserting its inverse value.
//
// Page layout (dims >= 2). Internal nodes are structure-of-arrays: the
// dim-0 routing keys sit in one contiguous strip right after the header so
// the in-node search (simd::FirstGreater) touches nothing else; capacities
// and fan-out are identical to the interleaved layout:
//   leaf (type 3):     u16 type, u16 pad, u32 count; entries {Point, V}
//   internal (type 4): u16 type, u16 pad, u32 count;
//                      f64 lowkey[InternalCapacity],
//                      then { u64 child, u64 border_root, V sum }[InternalCapacity]
// Internal record i routes dim-0 keys in [lowkey_i, lowkey_{i+1}); record 0's
// lowkey acts as -infinity.

#ifndef BOXAGG_ECDF_ECDF_BTREE_H_
#define BOXAGG_ECDF_ECDF_BTREE_H_

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bptree/agg_btree.h"
#include "check/checkable.h"
#include "core/arena.h"
#include "core/point_entry.h"
#include "geom/point.h"
#include "obs/query_obs.h"
#include "simd/simd.h"
#include "storage/buffer_pool.h"

namespace boxagg {

/// Which border scheme an ECDF-B-tree uses (Sec. 4, Fig. 6).
enum class EcdfVariant {
  kUpdateOptimized,  ///< ECDF-Bu: border i = subtree(e_i)
  kQueryOptimized,   ///< ECDF-Bq: border i = subtrees e_0..e_i
};

/// \brief Handle to a disk-resident d-dimensional ECDF-B-tree.
template <class V>
class EcdfBTree {
 public:
  using Entry = PointEntry<V>;

  /// `view` non-null binds the handle to a pinned generation snapshot (MVCC):
  /// every node read resolves through the view's version map and the handle
  /// rejects mutation. Null (default) reads/writes the live tree.
  EcdfBTree(BufferPool* pool, int dims, EcdfVariant variant,
            PageId root = kInvalidPageId,
            const PageVersionView* view = nullptr)
      : pool_(pool), dims_(dims), variant_(variant), root_(root),
        view_(view) {
    assert(dims_ >= 1 && dims_ <= kMaxDims);
  }

  [[nodiscard]] PageId root() const { return root_; }
  [[nodiscard]] bool empty() const { return root_ == kInvalidPageId; }
  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] EcdfVariant variant() const { return variant_; }

  static uint32_t LeafCapacity(uint32_t page_size) {
    return (page_size - kHeaderSize) / kLeafEntrySize;
  }
  static uint32_t InternalCapacity(uint32_t page_size) {
    return (page_size - kHeaderSize) / kInternalEntrySize;
  }
  static bool PageSizeViable(uint32_t page_size) {
    return LeafCapacity(page_size) >= 4 && InternalCapacity(page_size) >= 4 &&
           AggBTree<V>::PageSizeViable(page_size);
  }

  // Public layout map of the internal-node SoA strips (used by the
  // corruption-injection tests; see also AggBTree's public layout map).
  static uint32_t InternalLowKeyOffset(uint32_t i) {
    return kHeaderSize + i * 8;
  }
  static uint32_t InternalChildOffset(uint32_t page_size, uint32_t i) {
    return kHeaderSize + 8 * InternalCapacity(page_size) + i * kInternalRec;
  }
  static uint32_t InternalBorderOffset(uint32_t page_size, uint32_t i) {
    return InternalChildOffset(page_size, i) + 8;
  }
  static uint32_t InternalSumOffset(uint32_t page_size, uint32_t i) {
    return InternalChildOffset(page_size, i) + 16;
  }

  /// Adds `v` at point `p` (coalescing identical points in the main branch).
  Status Insert(const Point& p, const V& v) {
    BOXAGG_RETURN_NOT_OK(RequireWritable());
    if (!PageSizeViable(pool_->file()->page_size())) {
      return Status::InvalidArgument("page size too small for value type");
    }
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      BOXAGG_RETURN_NOT_OK(base.Insert(p[0], v));
      root_ = base.root();
      return Status::OK();
    }
    if (root_ == kInvalidPageId) {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->New(&g));
      SetHeader(g.page(), kLeaf, 1);
      WriteLeafEntry(g.page(), 0, p, v);
      g.MarkDirty();
      root_ = g.id();
      return Status::OK();
    }
    SplitResult split;
    BOXAGG_RETURN_NOT_OK(InsertRec(root_, p, v, &split));
    if (split.happened) {
      // Build a new root over the two halves, with fresh borders.
      PageId left = root_;
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->New(&g));
      SetHeader(g.page(), kInternal, 2);
      PageId border0, border1;
      std::vector<Entry> left_pts;
      BOXAGG_RETURN_NOT_OK(ScanRec(left, &left_pts));
      BOXAGG_RETURN_NOT_OK(BuildBorder(left_pts, &border0));
      if (variant_ == EcdfVariant::kUpdateOptimized) {
        std::vector<Entry> right_pts;
        BOXAGG_RETURN_NOT_OK(ScanRec(split.right_page, &right_pts));
        BOXAGG_RETURN_NOT_OK(BuildBorder(right_pts, &border1));
      } else {
        BOXAGG_RETURN_NOT_OK(ScanRec(split.right_page, &left_pts));
        BOXAGG_RETURN_NOT_OK(BuildBorder(left_pts, &border1));
      }
      WriteInternalEntry(g.page(), 0, split.left_lowkey, left, border0,
                         split.left_sum);
      WriteInternalEntry(g.page(), 1, split.right_lowkey, split.right_page,
                         border1, split.right_sum);
      g.MarkDirty();
      root_ = g.id();
    }
    return Status::OK();
  }

  // LINT:hot-path — descent: no heap allocation past warm-up (lint.sh)
  /// Total value of all points dominated by `q` (Sec. 2 semantics).
  ///
  /// `obs_level` offsets the per-level node-visit attribution (obs/):
  /// border sub-trees hanging off level L are probed at level L+1, so the
  /// composite structure's depth breakdown stays consistent.
  Status DominanceSum(const Point& q, V* out, unsigned obs_level = 0) const {
    *out = V{};
    if (root_ == kInvalidPageId) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      return base.DominanceSum(q[0], out, obs_level);
    }
    PageId pid = root_;
    Point projected = q.DropDim(0, dims_);
    for (unsigned level = obs_level;; ++level) {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
      obs::NoteNodeVisit(level);
      const Page* p = g.page();
      uint32_t n = Count(p);
      if (Type(p) == kLeaf) {
        for (uint32_t i = 0; i < n; ++i) {
          Point pt = LeafPoint(p, i);
          if (pt[0] > q[0]) break;
          if (simd::Dominates(q, pt, dims_)) {
            V v;
            ReadLeafValue(p, i, &v);
            *out += v;
          }
        }
        return Status::OK();
      }
      uint32_t idx = RouteInternal(p, n, q[0]);
      if (variant_ == EcdfVariant::kUpdateOptimized) {
        // Sum the borders of every child left of the path.
        if (idx > 0) obs::NoteBorderProbes(idx);
        for (uint32_t i = 0; i < idx; ++i) {
          V part;
          EcdfBTree sub(pool_, dims_ - 1, variant_, InternalBorder(p, i), view_);
          BOXAGG_RETURN_NOT_OK(sub.DominanceSum(projected, &part, level + 1));
          *out += part;
        }
      } else if (idx > 0) {
        // One prefix border covers everything left of the path.
        obs::NoteBorderProbes(1);
        V part;
        EcdfBTree sub(pool_, dims_ - 1, variant_, InternalBorder(p, idx - 1),
                      view_);
        BOXAGG_RETURN_NOT_OK(sub.DominanceSum(projected, &part, level + 1));
        *out += part;
      }
      pid = InternalChild(p, idx);
    }
  }

  /// Batched dominance sums: outs[i] = DominanceSum(qs[i]), bit-identical to
  /// `count` independent calls — each probe performs the same border and leaf
  /// additions in the same order; only the traversal order across probes and
  /// the page-fetch count change. Probes are sorted by the dim-0 key so the
  /// main branch routes them monotonically: each node is fetched once per
  /// batch, and border subtrees are themselves probed with sub-batches
  /// (recursively down to the 1-d AggBTree base case). With count == 1 the
  /// fetch/pin sequence is exactly DominanceSum's (seed I/O fidelity).
  Status DominanceSumBatch(const Point* qs, size_t count, V* outs,
                           unsigned obs_level = 0) const {
    for (size_t i = 0; i < count; ++i) outs[i] = V{};
    if (root_ == kInvalidPageId || count == 0) return Status::OK();
    core::ArenaScope scope(core::ScratchArena());
    if (dims_ == 1) {
      core::ArenaVector<double> keys(count);
      for (size_t i = 0; i < count; ++i) keys[i] = qs[i][0];
      AggBTree<V> base(pool_, root_, view_);
      return base.DominanceSumBatch(keys.data(), count, outs, obs_level);
    }
    core::ArenaVector<Point> projected(count);
    for (size_t i = 0; i < count; ++i) projected[i] = qs[i].DropDim(0, dims_);
    core::ArenaVector<uint32_t> order(count);
    for (size_t i = 0; i < count; ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order.begin(), order.end(), [qs](uint32_t a, uint32_t b) {
      if (qs[a][0] != qs[b][0]) return qs[a][0] < qs[b][0];
      return a < b;
    });
    return DominanceBatchRec(root_, order.data(), count, qs, projected.data(),
                             outs, obs_level);
  }

  // LINT:hot-path-end
  /// Sum of every value in the tree.
  Status TotalSum(V* out) const {
    *out = V{};
    if (root_ == kInvalidPageId) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      return base.TotalSum(out);
    }
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(root_, &g));
    const Page* p = g.page();
    uint32_t n = Count(p);
    if (Type(p) == kLeaf) {
      for (uint32_t i = 0; i < n; ++i) {
        V v;
        ReadLeafValue(p, i, &v);
        *out += v;
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        V s;
        ReadInternalSum(p, i, &s);
        *out += s;
      }
    }
    return Status::OK();
  }

  /// Collects every (point, value) of the main branch, sorted
  /// lexicographically.
  Status ScanAll(std::vector<Entry>* out) const {
    if (root_ == kInvalidPageId) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      std::vector<typename AggBTree<V>::Entry> flat;
      BOXAGG_RETURN_NOT_OK(base.ScanAll(&flat));
      for (const auto& e : flat) {
        out->push_back(Entry{Point(e.key), e.value});
      }
      return Status::OK();
    }
    return ScanRec(root_, out);
  }

  /// Number of distinct points in the main branch.
  Status CountEntries(uint64_t* out) const {
    *out = 0;
    if (root_ == kInvalidPageId) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      return base.CountEntries(out);
    }
    std::vector<Entry> all;
    BOXAGG_RETURN_NOT_OK(ScanRec(root_, &all));
    *out = all.size();
    return Status::OK();
  }

  /// Pages owned by this tree, including every border recursively. This is
  /// the index-size metric of Fig. 9a.
  Status PageCount(uint64_t* out) const {
    *out = 0;
    if (root_ == kInvalidPageId) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      return base.PageCount(out);
    }
    return PageCountRec(root_, out);
  }

  /// Bulk-loads the tree (must be empty) from `entries`; sorts and coalesces
  /// internally. Borders are bulk-loaded from contiguous sorted ranges.
  Status BulkLoad(std::vector<Entry> entries) {
    BOXAGG_RETURN_NOT_OK(RequireWritable());
    if (root_ != kInvalidPageId) {
      return Status::InvalidArgument("BulkLoad into non-empty tree");
    }
    if (!PageSizeViable(pool_->file()->page_size())) {
      return Status::InvalidArgument("page size too small for value type");
    }
    SortAndCoalesce(&entries, dims_);
    if (entries.empty()) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_);
      std::vector<typename AggBTree<V>::Entry> flat;
      flat.reserve(entries.size());
      for (const auto& e : entries) flat.push_back({e.pt[0], e.value});
      BOXAGG_RETURN_NOT_OK(base.BulkLoad(flat));
      root_ = base.root();
      return Status::OK();
    }

    const uint32_t page_size = pool_->file()->page_size();
    struct Up {
      double lowkey;
      PageId pid;
      V sum{};
      size_t begin;  // covered range in `entries`
      size_t end;
    };
    // Level 0: leaves.
    std::vector<Up> level;
    const uint32_t leaf_cap = LeafCapacity(page_size);
    size_t i = 0;
    while (i < entries.size()) {
      size_t take = std::min<size_t>(leaf_cap, entries.size() - i);
      if (entries.size() - i - take > 0 && entries.size() - i - take < 2 &&
          take > 2) {
        take -= 1;
      }
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->New(&g));
      SetHeader(g.page(), kLeaf, static_cast<uint32_t>(take));
      V sum{};
      for (size_t k = 0; k < take; ++k) {
        WriteLeafEntry(g.page(), static_cast<uint32_t>(k), entries[i + k].pt,
                       entries[i + k].value);
        sum += entries[i + k].value;
      }
      g.MarkDirty();
      level.push_back(Up{entries[i].pt[0], g.id(), sum, i, i + take});
      i += take;
    }
    // Upper levels, with borders.
    const uint32_t int_cap = InternalCapacity(page_size);
    while (level.size() > 1) {
      std::vector<Up> next;
      size_t j = 0;
      while (j < level.size()) {
        size_t take = std::min<size_t>(int_cap, level.size() - j);
        if (level.size() - j - take > 0 && level.size() - j - take < 2 &&
            take > 2) {
          take -= 1;
        }
        PageGuard g;
        BOXAGG_RETURN_NOT_OK(pool_->New(&g));
        SetHeader(g.page(), kInternal, static_cast<uint32_t>(take));
        V sum{};
        const size_t node_begin = level[j].begin;
        for (size_t k = 0; k < take; ++k) {
          const Up& u = level[j + k];
          size_t bb = variant_ == EcdfVariant::kUpdateOptimized ? u.begin
                                                                : node_begin;
          std::vector<Entry> pts(
              entries.begin() + static_cast<ptrdiff_t>(bb),
              entries.begin() + static_cast<ptrdiff_t>(u.end));
          PageId border;
          BOXAGG_RETURN_NOT_OK(BuildBorder(pts, &border));
          WriteInternalEntry(g.page(), static_cast<uint32_t>(k), u.lowkey,
                             u.pid, border, u.sum);
          sum += u.sum;
        }
        g.MarkDirty();
        next.push_back(Up{level[j].lowkey, g.id(), sum, node_begin,
                          level[j + take - 1].end});
        j += take;
      }
      level = std::move(next);
    }
    root_ = level[0].pid;
    return Status::OK();
  }

  /// Frees every page (main branch and all borders); the handle becomes
  /// empty.
  Status Destroy() {
    BOXAGG_RETURN_NOT_OK(RequireWritable());
    if (root_ == kInvalidPageId) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      BOXAGG_RETURN_NOT_OK(base.Destroy());
    } else {
      BOXAGG_RETURN_NOT_OK(DestroyRec(root_));
    }
    root_ = kInvalidPageId;
    return Status::OK();
  }

  /// Deep structural audit of the main branch and every border, recursively
  /// down to the 1-d AggBTree base case. Beyond the B+-tree invariants
  /// (types, fill, ordering, routing bounds, depth uniformity, record sums),
  /// this verifies the variant's border identity of Sec. 4 / Fig. 6: a Bu
  /// border's total equals its own record's subtree sum; a Bq border's total
  /// equals the prefix sum of records 0..i. A drifted border answers
  /// dominance queries plausibly but wrong — no query-level test catches it.
  Status CheckConsistency(CheckContext* ctx = nullptr) const {
    CheckContext local;
    if (ctx == nullptr) ctx = &local;
    if (root_ == kInvalidPageId) return Status::OK();
    if (dims_ == 1) {
      AggBTree<V> base(pool_, root_, view_);
      return base.CheckConsistency(ctx);
    }
    SubtreeFacts facts;
    return CheckRec(root_, /*is_root=*/true, ctx, &facts);
  }

 private:
  static constexpr uint16_t kLeaf = 3;
  static constexpr uint16_t kInternal = 4;
  static constexpr uint32_t kHeaderSize = 8;
  static constexpr uint32_t kLeafEntrySize = sizeof(Point) + sizeof(V);
  // Per-record page budget (determines capacity) and the stride of one
  // { child, border, sum } record in the internal payload strip.
  static constexpr uint32_t kInternalEntrySize = 24 + sizeof(V);
  static constexpr uint32_t kInternalRec = 16 + sizeof(V);

  struct SplitResult {
    bool happened = false;
    PageId right_page = kInvalidPageId;
    double left_lowkey = 0.0;
    double right_lowkey = 0.0;
    V left_sum{};
    V right_sum{};
  };

  // ---- MVCC plumbing ------------------------------------------------------

  /// Mutations are only legal on a live (view-less) handle; a snapshot-bound
  /// tree is immutable by construction.
  Status RequireWritable() const {
    if (view_ != nullptr) {
      return Status::InvalidArgument(
          "mutation through a snapshot-bound tree handle");
    }
    return Status::OK();
  }
  /// Routes a node read through the pinned snapshot when bound to one.
  Status FetchNode(PageId pid, PageGuard* g) const {
    return view_ != nullptr ? pool_->FetchSnapshot(*view_, pid, g)
                            : pool_->Fetch(pid, g);
  }
  void PrefetchNode(PageId pid) const {
    if (view_ != nullptr) {
      pool_->PrefetchSnapshotHint(*view_, pid);
    } else {
      pool_->PrefetchHint(pid);
    }
  }

  // ---- page accessors -----------------------------------------------------

  static void SetHeader(Page* p, uint16_t type, uint32_t count) {
    p->WriteAt<uint16_t>(0, type);
    p->WriteAt<uint16_t>(2, 0);
    p->WriteAt<uint32_t>(4, count);
  }
  static uint16_t Type(const Page* p) { return p->ReadAt<uint16_t>(0); }
  static uint32_t Count(const Page* p) { return p->ReadAt<uint32_t>(4); }
  static void SetCount(Page* p, uint32_t c) { p->WriteAt<uint32_t>(4, c); }

  static uint32_t LeafOff(uint32_t i) {
    return kHeaderSize + i * kLeafEntrySize;
  }

  [[nodiscard]] uint32_t PageSz() const { return pool_->file()->page_size(); }

  static Point LeafPoint(const Page* p, uint32_t i) {
    return p->ReadAt<Point>(LeafOff(i));
  }
  static void ReadLeafValue(const Page* p, uint32_t i, V* v) {
    p->ReadBytes(LeafOff(i) + sizeof(Point), v, sizeof(V));
  }
  static void WriteLeafEntry(Page* p, uint32_t i, const Point& pt,
                             const V& v) {
    p->WriteAt<Point>(LeafOff(i), pt);
    p->WriteBytes(LeafOff(i) + sizeof(Point), &v, sizeof(V));
  }

  static double InternalLowKey(const Page* p, uint32_t i) {
    return p->ReadAt<double>(InternalLowKeyOffset(i));
  }
  PageId InternalChild(const Page* p, uint32_t i) const {
    return p->ReadAt<uint64_t>(InternalChildOffset(PageSz(), i));
  }
  void SetInternalChild(Page* p, uint32_t i, PageId c) const {
    p->WriteAt<uint64_t>(InternalChildOffset(PageSz(), i), c);
  }
  PageId InternalBorder(const Page* p, uint32_t i) const {
    return p->ReadAt<uint64_t>(InternalBorderOffset(PageSz(), i));
  }
  void SetInternalBorder(Page* p, uint32_t i, PageId b) const {
    p->WriteAt<uint64_t>(InternalBorderOffset(PageSz(), i), b);
  }
  void ReadInternalSum(const Page* p, uint32_t i, V* v) const {
    p->ReadBytes(InternalSumOffset(PageSz(), i), v, sizeof(V));
  }
  void WriteInternalEntry(Page* p, uint32_t i, double lowkey, PageId child,
                          PageId border, const V& sum) const {
    p->WriteAt<double>(InternalLowKeyOffset(i), lowkey);
    p->WriteAt<uint64_t>(InternalChildOffset(PageSz(), i), child);
    p->WriteAt<uint64_t>(InternalBorderOffset(PageSz(), i), border);
    p->WriteBytes(InternalSumOffset(PageSz(), i), &sum, sizeof(V));
  }
  void WriteInternalSum(Page* p, uint32_t i, const V& sum) const {
    p->WriteBytes(InternalSumOffset(PageSz(), i), &sum, sizeof(V));
  }

  /// Last record with lowkey <= q (record 0's lowkey acts as -infinity):
  /// simd::FirstGreater over the lowkey strip entries [1, n) returns exactly
  /// that record's index (same contract as AggBTree::RouteInternal).
  static uint32_t RouteInternal(const Page* p, uint32_t n, double q) {
    const double* lowkeys =
        reinterpret_cast<const double*>(p->data() + kHeaderSize);
    return simd::FirstGreater(lowkeys + 1, n - 1, q);
  }

  // ---- verification -------------------------------------------------------

  struct SubtreeFacts {
    double min_key = 0.0;  // dim-0 extrema of the subtree's points
    double max_key = 0.0;
    V sum{};
    uint32_t depth = 0;
  };

  Status CheckRec(PageId pid, bool is_root, CheckContext* ctx,
                  SubtreeFacts* out) const {
    BOXAGG_RETURN_NOT_OK(ctx->Visit(pid, "ecdf-btree"));
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    const Page* p = g.page();
    const uint16_t type = Type(p);
    if (type != kLeaf && type != kInternal) {
      return CorruptionAt(pid,
                          "ecdf-btree: bad node type " + std::to_string(type));
    }
    const uint32_t page_size = pool_->file()->page_size();
    const uint32_t cap =
        type == kLeaf ? LeafCapacity(page_size) : InternalCapacity(page_size);
    const uint32_t n = Count(p);
    if (n == 0 || n > cap) {
      return CorruptionAt(pid, "ecdf-btree: entry count " + std::to_string(n) +
                                   " outside [1, " + std::to_string(cap) +
                                   "]");
    }
    if (!is_root && n < 2) {
      return CorruptionAt(pid, "ecdf-btree: underfull non-root node");
    }

    if (type == kLeaf) {
      out->sum = V{};
      for (uint32_t i = 0; i < n; ++i) {
        if (i > 0 &&
            !LexLess(LeafPoint(p, i - 1), LeafPoint(p, i), dims_)) {
          return CorruptionAt(
              pid, "ecdf-btree: leaf points not strictly increasing "
                   "(lexicographic) at entry " +
                       std::to_string(i));
        }
        V v;
        ReadLeafValue(p, i, &v);
        out->sum += v;
      }
      out->min_key = LeafPoint(p, 0)[0];
      out->max_key = LeafPoint(p, n - 1)[0];
      out->depth = 0;
      return Status::OK();
    }

    out->sum = V{};
    V prefix{};  // running sum of records 0..i, the Bq border identity target
    for (uint32_t i = 0; i < n; ++i) {
      const double lowkey = InternalLowKey(p, i);
      // Points sharing a dim-0 coordinate may straddle a split boundary, so
      // lowkeys are only non-decreasing (unlike the coalesced 1-d tree).
      if (i > 0 && InternalLowKey(p, i - 1) > lowkey) {
        return CorruptionAt(
            pid, "ecdf-btree: internal lowkeys decreasing at entry " +
                     std::to_string(i));
      }
      SubtreeFacts child;
      BOXAGG_RETURN_NOT_OK(
          CheckRec(InternalChild(p, i), /*is_root=*/false, ctx, &child));
      if (i > 0 && child.min_key < lowkey) {
        return CorruptionAt(pid, "ecdf-btree: subtree of entry " +
                                     std::to_string(i) +
                                     " holds a key below its lowkey");
      }
      if (i + 1 < n && child.max_key > InternalLowKey(p, i + 1)) {
        return CorruptionAt(pid, "ecdf-btree: subtree of entry " +
                                     std::to_string(i) +
                                     " reaches past the next record's lowkey");
      }
      V stored;
      ReadInternalSum(p, i, &stored);
      if (AggDrift(stored, child.sum) > kAggDriftTolerance) {
        return CorruptionAt(pid, "ecdf-btree: record aggregate of entry " +
                                     std::to_string(i) +
                                     " != recomputed subtree sum");
      }
      if (i == 0) {
        out->depth = child.depth + 1;
        out->min_key = child.min_key;
      } else if (child.depth + 1 != out->depth) {
        return CorruptionAt(pid, "ecdf-btree: leaves at unequal depths");
      }
      out->max_key = child.max_key;
      out->sum += child.sum;
      prefix += child.sum;

      // Border: audit its own structure, then the variant identity.
      EcdfBTree border(pool_, dims_ - 1, variant_, InternalBorder(p, i),
                       view_);
      BOXAGG_RETURN_NOT_OK(border.CheckConsistency(ctx));
      V border_total;
      BOXAGG_RETURN_NOT_OK(border.TotalSum(&border_total));
      const V& want =
          variant_ == EcdfVariant::kUpdateOptimized ? child.sum : prefix;
      if (AggDrift(border_total, want) > kAggDriftTolerance) {
        return CorruptionAt(
            pid, std::string("ecdf-btree: border of entry ") +
                     std::to_string(i) + " total != covered subtree sum (" +
                     (variant_ == EcdfVariant::kUpdateOptimized
                          ? "Bu: subtree(e_i)"
                          : "Bq: prefix e_0..e_i") +
                     ")");
      }
    }
    return Status::OK();
  }

  // ---- border helpers -----------------------------------------------------

  /// Bulk-loads a (dims-1)-dim border from `pts` (full-dimension points; the
  /// first coordinate is dropped here).
  Status BuildBorder(const std::vector<Entry>& pts, PageId* out) {
    EcdfBTree sub(pool_, dims_ - 1, variant_);
    std::vector<Entry> projected;
    projected.reserve(pts.size());
    for (const auto& e : pts) {
      projected.push_back(Entry{e.pt.DropDim(0, dims_), e.value});
    }
    BOXAGG_RETURN_NOT_OK(sub.BulkLoad(std::move(projected)));
    *out = sub.root();
    return Status::OK();
  }

  /// Inserts an (already projected) point into the border rooted at
  /// `*border_root`, updating the root in place.
  Status BorderInsert(PageId* border_root, const Point& projected,
                      const V& v) {
    EcdfBTree sub(pool_, dims_ - 1, variant_, *border_root);
    BOXAGG_RETURN_NOT_OK(sub.Insert(projected, v));
    *border_root = sub.root();
    return Status::OK();
  }

  /// Deep-copies the border rooted at `src` (kInvalidPageId copies to
  /// kInvalidPageId).
  Status CloneBorder(PageId src, PageId* out) {
    if (src == kInvalidPageId) {
      *out = kInvalidPageId;
      return Status::OK();
    }
    EcdfBTree sub(pool_, dims_ - 1, variant_, src);
    return sub.CloneInto(out);
  }

  Status DestroyBorder(PageId border_root) {
    EcdfBTree sub(pool_, dims_ - 1, variant_, border_root);
    return sub.Destroy();
  }

  /// Deep page copy of this tree; returns the copy's root.
  Status CloneInto(PageId* out) {
    if (root_ == kInvalidPageId) {
      *out = kInvalidPageId;
      return Status::OK();
    }
    if (dims_ == 1) {
      return CloneAgg(root_, out);
    }
    return CloneRec(root_, out);
  }

  /// Clone of a base AggBTree page graph (type 1/2 pages).
  Status CloneAgg(PageId pid, PageId* out) {
    PageGuard src, dst;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &src));
    BOXAGG_RETURN_NOT_OK(pool_->New(&dst));
    std::memcpy(dst.page()->data(), src.page()->data(),
                pool_->file()->page_size());
    dst.MarkDirty();
    *out = dst.id();
    if (src.page()->ReadAt<uint16_t>(0) == 2) {  // AggBTree internal
      uint32_t n = src.page()->ReadAt<uint32_t>(4);
      src.Release();
      const uint32_t ps = pool_->file()->page_size();
      for (uint32_t i = 0; i < n; ++i) {
        // Re-fetch per child to bound pin counts.
        PageGuard d2;
        BOXAGG_RETURN_NOT_OK(FetchNode(*out, &d2));
        const uint32_t child_off = AggBTree<V>::InternalChildOffset(ps, i);
        PageId child = d2.page()->ReadAt<uint64_t>(child_off);
        d2.Release();
        PageId cloned;
        BOXAGG_RETURN_NOT_OK(CloneAgg(child, &cloned));
        BOXAGG_RETURN_NOT_OK(FetchNode(*out, &d2));
        d2.page()->WriteAt<uint64_t>(child_off, cloned);
        d2.MarkDirty();
      }
    }
    return Status::OK();
  }

  Status CloneRec(PageId pid, PageId* out) {
    {
      PageGuard src, dst;
      BOXAGG_RETURN_NOT_OK(FetchNode(pid, &src));
      BOXAGG_RETURN_NOT_OK(pool_->New(&dst));
      std::memcpy(dst.page()->data(), src.page()->data(),
                  pool_->file()->page_size());
      dst.MarkDirty();
      *out = dst.id();
      if (Type(src.page()) == kLeaf) return Status::OK();
    }
    PageGuard d;
    BOXAGG_RETURN_NOT_OK(FetchNode(*out, &d));
    uint32_t n = Count(d.page());
    d.Release();
    for (uint32_t i = 0; i < n; ++i) {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(FetchNode(*out, &g));
      PageId child = InternalChild(g.page(), i);
      PageId border = InternalBorder(g.page(), i);
      g.Release();
      PageId child_copy, border_copy;
      BOXAGG_RETURN_NOT_OK(CloneRec(child, &child_copy));
      BOXAGG_RETURN_NOT_OK(CloneBorder(border, &border_copy));
      BOXAGG_RETURN_NOT_OK(FetchNode(*out, &g));
      SetInternalChild(g.page(), i, child_copy);
      SetInternalBorder(g.page(), i, border_copy);
      g.MarkDirty();
    }
    return Status::OK();
  }

  // ---- mutation -----------------------------------------------------------

  Status InsertRec(PageId pid, const Point& p, const V& v,
                   SplitResult* split) {
    split->happened = false;
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    Page* page = g.page();
    uint32_t n = Count(page);
    const uint32_t page_size = pool_->file()->page_size();

    if (Type(page) == kLeaf) {
      // Position by lexicographic order.
      uint32_t lo = 0;
      while (lo < n && LexLess(LeafPoint(page, lo), p, dims_)) ++lo;
      if (lo < n && LexEqual(LeafPoint(page, lo), p, dims_)) {
        V cur;
        ReadLeafValue(page, lo, &cur);
        cur += v;
        WriteLeafEntry(page, lo, p, cur);
        g.MarkDirty();
        return Status::OK();
      }
      if (n < LeafCapacity(page_size)) {
        std::memmove(page->data() + LeafOff(lo + 1),
                     page->data() + LeafOff(lo), (n - lo) * kLeafEntrySize);
        WriteLeafEntry(page, lo, p, v);
        SetCount(page, n + 1);
        g.MarkDirty();
        return Status::OK();
      }
      // Leaf split.
      std::vector<Entry> all(n);
      for (uint32_t i = 0; i < n; ++i) {
        all[i].pt = LeafPoint(page, i);
        ReadLeafValue(page, i, &all[i].value);
      }
      all.insert(all.begin() + lo, Entry{p, v});
      uint32_t left_n = static_cast<uint32_t>(all.size() / 2);
      PageGuard rg;
      BOXAGG_RETURN_NOT_OK(pool_->New(&rg));
      SetHeader(page, kLeaf, left_n);
      V lsum{}, rsum{};
      for (uint32_t i = 0; i < left_n; ++i) {
        WriteLeafEntry(page, i, all[i].pt, all[i].value);
        lsum += all[i].value;
      }
      uint32_t right_n = static_cast<uint32_t>(all.size()) - left_n;
      SetHeader(rg.page(), kLeaf, right_n);
      for (uint32_t i = 0; i < right_n; ++i) {
        WriteLeafEntry(rg.page(), i, all[left_n + i].pt,
                       all[left_n + i].value);
        rsum += all[left_n + i].value;
      }
      g.MarkDirty();
      rg.MarkDirty();
      split->happened = true;
      split->right_page = rg.id();
      split->left_lowkey = all[0].pt[0];
      split->right_lowkey = all[left_n].pt[0];
      split->left_sum = lsum;
      split->right_sum = rsum;
      return Status::OK();
    }

    // Internal node: first maintain borders for the incoming point, then
    // recurse.
    uint32_t idx = RouteInternal(page, n, p[0]);
    Point projected = p.DropDim(0, dims_);
    if (variant_ == EcdfVariant::kUpdateOptimized) {
      PageId b = InternalBorder(page, idx);
      BOXAGG_RETURN_NOT_OK(BorderInsert(&b, projected, v));
      SetInternalBorder(page, idx, b);
    } else {
      for (uint32_t i = idx; i < n; ++i) {
        PageId b = InternalBorder(page, i);
        BOXAGG_RETURN_NOT_OK(BorderInsert(&b, projected, v));
        SetInternalBorder(page, i, b);
      }
    }
    g.MarkDirty();

    PageId child = InternalChild(page, idx);
    SplitResult child_split;
    BOXAGG_RETURN_NOT_OK(InsertRec(child, p, v, &child_split));
    if (!child_split.happened) {
      V s;
      ReadInternalSum(page, idx, &s);
      s += v;
      WriteInternalSum(page, idx, s);
      g.MarkDirty();
      return Status::OK();
    }

    // The child split into (child, right_page): replace record idx with two
    // records and rebuild/move their borders per variant.
    PageId old_border = InternalBorder(page, idx);
    PageId border1 = kInvalidPageId, border2 = kInvalidPageId;
    if (variant_ == EcdfVariant::kUpdateOptimized) {
      std::vector<Entry> pts;
      BOXAGG_RETURN_NOT_OK(ScanRec(child, &pts));
      BOXAGG_RETURN_NOT_OK(BuildBorder(pts, &border1));
      pts.clear();
      BOXAGG_RETURN_NOT_OK(ScanRec(child_split.right_page, &pts));
      BOXAGG_RETURN_NOT_OK(BuildBorder(pts, &border2));
      BOXAGG_RETURN_NOT_OK(DestroyBorder(old_border));
    } else {
      // Bq: the old border (prefix through the whole old child) is exactly
      // the prefix through the new right half -> reuse it as border2.
      border2 = old_border;
      // border1 = prefix through the left half = clone of the left
      // neighbour's border plus the left half's points.
      if (idx == 0) {
        border1 = kInvalidPageId;
      } else {
        BOXAGG_RETURN_NOT_OK(
            CloneBorder(InternalBorder(page, idx - 1), &border1));
      }
      std::vector<Entry> pts;
      BOXAGG_RETURN_NOT_OK(ScanRec(child, &pts));
      for (const auto& e : pts) {
        BOXAGG_RETURN_NOT_OK(
            BorderInsert(&border1, e.pt.DropDim(0, dims_), e.value));
      }
    }
    WriteInternalEntry(page, idx, child_split.left_lowkey, child, border1,
                       child_split.left_sum);
    if (n < InternalCapacity(page_size)) {
      // Shift both SoA strips independently: the lowkey strip and the
      // {child, border, sum} record strip.
      std::memmove(page->data() + InternalLowKeyOffset(idx + 2),
                   page->data() + InternalLowKeyOffset(idx + 1),
                   (n - idx - 1) * size_t{8});
      std::memmove(page->data() + InternalChildOffset(page_size, idx + 2),
                   page->data() + InternalChildOffset(page_size, idx + 1),
                   (n - idx - 1) * size_t{kInternalRec});
      WriteInternalEntry(page, idx + 1, child_split.right_lowkey,
                         child_split.right_page, border2,
                         child_split.right_sum);
      SetCount(page, n + 1);
      g.MarkDirty();
      return Status::OK();
    }

    // This internal node overflows: split its records.
    struct IEntry {
      double lowkey;
      PageId child;
      PageId border;
      V sum;
    };
    std::vector<IEntry> all(n);
    for (uint32_t i = 0; i < n; ++i) {
      all[i].lowkey = InternalLowKey(page, i);
      all[i].child = InternalChild(page, i);
      all[i].border = InternalBorder(page, i);
      ReadInternalSum(page, i, &all[i].sum);
    }
    all.insert(all.begin() + idx + 1,
               IEntry{child_split.right_lowkey, child_split.right_page,
                      border2, child_split.right_sum});
    uint32_t left_n = static_cast<uint32_t>(all.size() / 2);
    uint32_t right_n = static_cast<uint32_t>(all.size()) - left_n;

    if (variant_ == EcdfVariant::kQueryOptimized) {
      // Prefix borders in the right half covered the left half too; rebuild
      // them over the right half's own subtrees only.
      std::vector<Entry> cumulative;
      for (uint32_t i = 0; i < right_n; ++i) {
        IEntry& e = all[left_n + i];
        BOXAGG_RETURN_NOT_OK(ScanRec(e.child, &cumulative));
        BOXAGG_RETURN_NOT_OK(DestroyBorder(e.border));
        BOXAGG_RETURN_NOT_OK(BuildBorder(cumulative, &e.border));
      }
    }

    PageGuard rg;
    BOXAGG_RETURN_NOT_OK(pool_->New(&rg));
    SetHeader(page, kInternal, left_n);
    V lsum{}, rsum{};
    for (uint32_t i = 0; i < left_n; ++i) {
      WriteInternalEntry(page, i, all[i].lowkey, all[i].child, all[i].border,
                         all[i].sum);
      lsum += all[i].sum;
    }
    SetHeader(rg.page(), kInternal, right_n);
    for (uint32_t i = 0; i < right_n; ++i) {
      WriteInternalEntry(rg.page(), i, all[left_n + i].lowkey,
                         all[left_n + i].child, all[left_n + i].border,
                         all[left_n + i].sum);
      rsum += all[left_n + i].sum;
    }
    g.MarkDirty();
    rg.MarkDirty();
    split->happened = true;
    split->right_page = rg.id();
    split->left_lowkey = all[0].lowkey;
    split->right_lowkey = all[left_n].lowkey;
    split->left_sum = lsum;
    split->right_sum = rsum;
    return Status::OK();
  }

  // ---- traversal ----------------------------------------------------------

  // LINT:hot-path — descent: no heap allocation past warm-up (lint.sh)
  /// One main-branch node of the batched descent: `idx[0..m)` are probe
  /// indices sorted by dim-0 key whose paths all pass through `pid`.
  /// Per-probe arithmetic matches DominanceSum exactly: borders are added in
  /// ascending record order (Bu) or as the single prefix border (Bq) before
  /// the descent's contributions, and border probes happen while the node is
  /// pinned, as in the sequential loop. The pin is dropped before descending.
  Status DominanceBatchRec(PageId pid, const uint32_t* idx, size_t m,
                           const Point* qs, const Point* projected, V* outs,
                           unsigned obs_level = 0) const {
    struct Group {
      uint32_t route;
      PageId child;
      size_t begin;
      size_t end;
    };
    core::ArenaScope scope(core::ScratchArena());
    core::ArenaVector<Group> groups;
    {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
      obs::NoteNodeVisit(obs_level);
      if (m > 1) pool_->NoteProbeFetchesSaved(m - 1);
      const Page* p = g.page();
      uint32_t n = Count(p);
      if (Type(p) == kLeaf) {
        for (size_t j = 0; j < m; ++j) {
          const Point& q = qs[idx[j]];
          V* out = &outs[idx[j]];
          for (uint32_t i = 0; i < n; ++i) {
            Point pt = LeafPoint(p, i);
            if (pt[0] > q[0]) break;
            if (simd::Dominates(q, pt, dims_)) {
              V v;
              ReadLeafValue(p, i, &v);
              *out += v;
            }
          }
        }
        return Status::OK();
      }
      // Sorted probes route monotonically, so per-child groups are
      // contiguous runs of idx with strictly increasing routes.
      size_t j = 0;
      while (j < m) {
        const uint32_t route = RouteInternal(p, n, qs[idx[j]][0]);
        size_t k = j + 1;
        while (k < m && RouteInternal(p, n, qs[idx[k]][0]) == route) ++k;
        groups.push_back(Group{route, InternalChild(p, route), j, k});
        j = k;
      }
      if (variant_ == EcdfVariant::kUpdateOptimized) {
        // Border i is needed by every probe routed right of record i — a
        // contiguous suffix of the sorted batch. Probing borders in
        // ascending i gives each probe its border additions in the same
        // order as the sequential `for (i < idx)` loop.
        size_t gi = 0;  // first group with route > i
        core::ArenaVector<Point> pts;
        core::ArenaVector<V> parts;
        for (uint32_t i = 0; i < groups.back().route; ++i) {
          while (groups[gi].route <= i) ++gi;
          const size_t s = groups[gi].begin;
          const size_t gs = m - s;
          pts.resize(gs);
          parts.resize(gs);
          for (size_t t = 0; t < gs; ++t) pts[t] = projected[idx[s + t]];
          obs::NoteBorderProbes(gs);
          EcdfBTree sub(pool_, dims_ - 1, variant_, InternalBorder(p, i), view_);
          BOXAGG_RETURN_NOT_OK(
              sub.DominanceSumBatch(pts.data(), gs, parts.data(),
                                    obs_level + 1));
          for (size_t t = 0; t < gs; ++t) outs[idx[s + t]] += parts[t];
        }
      } else {
        // Bq: each route group reads exactly one prefix border.
        core::ArenaVector<Point> pts;
        core::ArenaVector<V> parts;
        for (const Group& gr : groups) {
          if (gr.route == 0) continue;
          const size_t gs = gr.end - gr.begin;
          pts.resize(gs);
          parts.resize(gs);
          for (size_t t = 0; t < gs; ++t) {
            pts[t] = projected[idx[gr.begin + t]];
          }
          obs::NoteBorderProbes(gs);
          EcdfBTree sub(pool_, dims_ - 1, variant_,
                        InternalBorder(p, gr.route - 1), view_);
          BOXAGG_RETURN_NOT_OK(
              sub.DominanceSumBatch(pts.data(), gs, parts.data(),
                                    obs_level + 1));
          for (size_t t = 0; t < gs; ++t) {
            outs[idx[gr.begin + t]] += parts[t];
          }
        }
      }
    }
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      // Warm the next group's child while the current one is processed.
      if (gi + 1 < groups.size()) PrefetchNode(groups[gi + 1].child);
      const Group& gr = groups[gi];
      BOXAGG_RETURN_NOT_OK(DominanceBatchRec(gr.child, idx + gr.begin,
                                             gr.end - gr.begin, qs, projected,
                                             outs, obs_level + 1));
    }
    return Status::OK();
  }

  // LINT:hot-path-end
  Status ScanRec(PageId pid, std::vector<Entry>* out) const {
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    const Page* p = g.page();
    uint32_t n = Count(p);
    if (Type(p) == kLeaf) {
      for (uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.pt = LeafPoint(p, i);
        ReadLeafValue(p, i, &e.value);
        out->push_back(e);
      }
      return Status::OK();
    }
    std::vector<PageId> children(n);
    for (uint32_t i = 0; i < n; ++i) children[i] = InternalChild(p, i);
    g.Release();
    for (PageId c : children) {
      BOXAGG_RETURN_NOT_OK(ScanRec(c, out));
    }
    return Status::OK();
  }

  Status PageCountRec(PageId pid, uint64_t* out) const {
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    const Page* p = g.page();
    *out += 1;
    if (Type(p) != kInternal) return Status::OK();
    uint32_t n = Count(p);
    std::vector<std::pair<PageId, PageId>> kids(n);
    for (uint32_t i = 0; i < n; ++i) {
      kids[i] = {InternalChild(p, i), InternalBorder(p, i)};
    }
    g.Release();
    for (auto [child, border] : kids) {
      BOXAGG_RETURN_NOT_OK(PageCountRec(child, out));
      if (border != kInvalidPageId) {
        EcdfBTree sub(pool_, dims_ - 1, variant_, border, view_);
        uint64_t b = 0;
        BOXAGG_RETURN_NOT_OK(sub.PageCount(&b));
        *out += b;
      }
    }
    return Status::OK();
  }

  Status DestroyRec(PageId pid) {
    std::vector<std::pair<PageId, PageId>> kids;
    {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
      const Page* p = g.page();
      if (Type(p) == kInternal) {
        uint32_t n = Count(p);
        kids.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          kids.push_back({InternalChild(p, i), InternalBorder(p, i)});
        }
      }
    }
    for (auto [child, border] : kids) {
      BOXAGG_RETURN_NOT_OK(DestroyRec(child));
      if (border != kInvalidPageId) {
        BOXAGG_RETURN_NOT_OK(DestroyBorder(border));
      }
    }
    return pool_->Delete(pid);
  }

  BufferPool* pool_;
  int dims_;
  EcdfVariant variant_;
  PageId root_;
  const PageVersionView* view_ = nullptr;  // non-null: snapshot-bound reads
};

}  // namespace boxagg

#endif  // BOXAGG_ECDF_ECDF_BTREE_H_
