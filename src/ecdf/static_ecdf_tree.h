// StaticEcdfTree: Bentley's main-memory ECDF-tree ([5]; Sec. 4 of the paper).
//
// A d-dimensional ECDF-tree is a balanced binary tree over the points sorted
// by their first coordinate; every internal node stores a *border* — a
// (d-1)-dimensional ECDF-tree over the left subtree's points projected onto
// the remaining dimensions. A dominance-sum query at p walks one root-to-leaf
// path: whenever it goes right, it adds the border's (d-1)-dim dominance-sum
// at the projection of p.
//
// The structure is static (built once from a point set) and in-memory; the
// ECDF-B-trees and the BA-tree are the paper's disk-based, dynamic answers to
// its limitations. Here it serves as the reference substrate and a fast
// oracle in tests.

#ifndef BOXAGG_ECDF_STATIC_ECDF_TREE_H_
#define BOXAGG_ECDF_STATIC_ECDF_TREE_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "core/point_entry.h"

namespace boxagg {

/// \brief Static multi-level ECDF-tree answering dominance-sum queries in
/// O(log^d n) comparisons.
template <class V>
class StaticEcdfTree {
 public:
  /// Builds the tree from `entries` (copied; order irrelevant).
  StaticEcdfTree(int dims, std::vector<PointEntry<V>> entries) : dims_(dims) {
    SortAndCoalesce(&entries, dims_);
    if (dims_ == 1) {
      base_keys_.reserve(entries.size());
      base_prefix_.reserve(entries.size());
      V run{};
      for (const auto& e : entries) {
        base_keys_.push_back(e.pt[0]);
        run += e.value;
        base_prefix_.push_back(run);
      }
    } else if (!entries.empty()) {
      root_ = Build(entries, 0, entries.size());
    }
    size_ = entries.size();
  }

  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] size_t size() const { return size_; }

  /// Total value of all points dominated by `q`.
  V Query(const Point& q) const {
    if (dims_ == 1) {
      // Last key <= q[0].
      auto it = std::upper_bound(base_keys_.begin(), base_keys_.end(), q[0]);
      if (it == base_keys_.begin()) return V{};
      return base_prefix_[static_cast<size_t>(it - base_keys_.begin()) - 1];
    }
    V acc{};
    const Node* n = root_.get();
    while (n != nullptr) {
      if (n->IsLeaf()) {
        for (const auto& e : n->bucket) {
          if (q.Dominates(e.pt, dims_)) acc += e.value;
        }
        break;
      }
      if (q[0] < n->split) {
        n = n->left.get();
      } else {
        // Entire left subtree is dominated in dim 0; its contribution is a
        // (d-1)-dim dominance-sum on the border.
        acc += n->border->Query(q.DropDim(0, dims_));
        n = n->right.get();
      }
    }
    return acc;
  }

 private:
  struct Node {
    double split = 0.0;  // max dim-0 coordinate in the left subtree
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    std::unique_ptr<StaticEcdfTree> border;  // left subtree, dims-1
    std::vector<PointEntry<V>> bucket;       // leaf payload

    bool IsLeaf() const { return border == nullptr; }
  };

  static constexpr size_t kLeafBucket = 8;

  std::unique_ptr<Node> Build(const std::vector<PointEntry<V>>& pts,
                              size_t lo, size_t hi) {
    auto n = std::make_unique<Node>();
    if (hi - lo <= kLeafBucket) {
      n->bucket.assign(pts.begin() + static_cast<ptrdiff_t>(lo),
                       pts.begin() + static_cast<ptrdiff_t>(hi));
      return n;
    }
    size_t mid = (lo + hi) / 2;
    // split = first right-subtree coordinate: q[0] >= split implies q[0] is
    // at least the left-subtree maximum, so going right may add the whole
    // left border (non-strict dominance handles equal coordinates).
    n->split = pts[mid].pt[0];
    n->left = Build(pts, lo, mid);
    n->right = Build(pts, mid, hi);
    std::vector<PointEntry<V>> projected;
    projected.reserve(mid - lo);
    for (size_t i = lo; i < mid; ++i) {
      projected.push_back({pts[i].pt.DropDim(0, dims_), pts[i].value});
    }
    n->border = std::make_unique<StaticEcdfTree>(dims_ - 1,
                                                 std::move(projected));
    return n;
  }

  int dims_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;       // dims >= 2
  std::vector<double> base_keys_;    // dims == 1: sorted keys
  std::vector<V> base_prefix_;       // dims == 1: prefix sums
};

}  // namespace boxagg

#endif  // BOXAGG_ECDF_STATIC_ECDF_TREE_H_
