// Portable SIMD kernels for the descent hot path.
//
// The wrapper exposes exactly the four operations the trees spend their CPU
// time on, each with a scalar reference implementation (`simd::ref`) that is
// always compiled and a vector implementation selected at build time:
//
//   FirstGreater        in-node key search (leaf cutoff + internal routing)
//   Dominates           dominance test between two points (ECDF leaves)
//   ContainsHalfOpen    half-open box membership (BaTree record scans)
//   AccumulateSigned    corner inclusion-exclusion accumulation
//   UnpackFixedWidth    fixed-width integer strip decode (compact replicas)
//
// Backend selection: the default build compiles only the scalar path, so
// TSan/ASan/clang-tidy CI and any non-x86 box behave exactly as before.
// Configuring with -DBOXAGG_NATIVE=ON defines BOXAGG_NATIVE and adds
// -march=native -ffp-contract=off; the wrapper then picks AVX2 or NEON when
// the compiler advertises them.
//
// Bit-identity contract (enforced by tests/simd_test.cpp): every kernel here
// produces *identical* results to its scalar reference on every input the
// trees can present, including NaN, +/-inf and -0.0:
//
//   * FirstGreater requires keys sorted ascending (a B-tree node invariant;
//     the seed code already binary-searched the same array) — on sorted input
//     the binary-narrow + vector-scan hybrid returns the same index as a pure
//     scalar search by construction.
//   * Comparisons use ordered, non-signaling predicates (_CMP_LT_OQ /
//     _CMP_GE_OQ / _CMP_GT_OQ) which evaluate to false on NaN, matching the
//     scalar `<`, `>=`, `>` operators exactly.
//   * AccumulateSigned performs an independent multiply-then-add per lane —
//     the same two IEEE operations, in the same order, as the scalar loop.
//     FMA contraction is disabled (-ffp-contract=off rides along with
//     BOXAGG_NATIVE) so the compiler cannot fuse them.

#ifndef BOXAGG_SIMD_SIMD_H_
#define BOXAGG_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "geom/box.h"
#include "geom/point.h"

#if defined(BOXAGG_NATIVE) && defined(__AVX2__)
#define BOXAGG_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(BOXAGG_NATIVE) && (defined(__aarch64__) || defined(__ARM_NEON))
#define BOXAGG_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace boxagg {
namespace simd {

/// Human-readable backend tag, surfaced in BENCH_*.json lines.
inline constexpr const char* kBackend =
#if defined(BOXAGG_SIMD_AVX2)
    "avx2";
#elif defined(BOXAGG_SIMD_NEON)
    "neon";
#else
    "scalar";
#endif

/// Window below which the hybrid search switches from binary narrowing to a
/// forward scan. Vector builds scan wider because each step covers several
/// lanes; the scalar default keeps the window small so the operation count
/// stays within a few comparisons of a pure binary search.
inline constexpr uint32_t kSearchScanWindow =
#if defined(BOXAGG_SIMD_AVX2)
    32;
#elif defined(BOXAGG_SIMD_NEON)
    16;
#else
    8;
#endif

// ---------------------------------------------------------------------------
// Scalar reference kernels. Always compiled; the property tests and the
// kernel microbenchmarks compare the active backend against these.

namespace ref {

/// First index i in the ascending-sorted array with keys[i] > q (n if none).
inline uint32_t FirstGreater(const double* keys, uint32_t n, double q) {
  uint32_t lo = 0, hi = n;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (!(keys[mid] > q)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// True iff q[i] >= p[i] for all i < dims (q dominates p).
inline bool Dominates(const double* q, const double* p, int dims) {
  for (int i = 0; i < dims; ++i) {
    if (q[i] < p[i]) return false;
  }
  return true;
}

/// True iff lo[i] <= p[i] < hi[i] for all i < dims.
inline bool ContainsHalfOpen(const double* lo, const double* hi,
                             const double* p, int dims) {
  for (int i = 0; i < dims; ++i) {
    if (p[i] < lo[i] || p[i] >= hi[i]) return false;
  }
  return true;
}

/// out[i] += sign * parts[probe_of[i]] — the corner accumulation step.
inline void AccumulateSigned(double* out, const double* parts,
                             const uint32_t* probe_of, double sign,
                             size_t count) {
  for (size_t i = 0; i < count; ++i) {
    out[i] += sign * parts[probe_of[i]];
  }
}

/// out[i] = base + the little-endian `width`-byte unsigned integer at
/// src + i*width, for width in [0, 8]; width 0 means every element equals
/// base and nothing is stored. The replica strip decoder's inner loop.
inline void UnpackFixedWidth(const uint8_t* src, uint32_t count,
                             uint32_t width, uint64_t base, uint64_t* out) {
  if (width == 0) {
    for (uint32_t i = 0; i < count; ++i) out[i] = base;
    return;
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    std::memcpy(&v, src + size_t{i} * width, width);
    out[i] = base + v;
  }
}

}  // namespace ref

// ---------------------------------------------------------------------------
// Active backend.

#if defined(BOXAGG_SIMD_AVX2)

namespace detail {
/// First index i < n with keys[i] > q, scanning forward (n if none).
inline uint32_t ScanGreater(const double* keys, uint32_t n, double q) {
  const __m256d vq = _mm256_set1_pd(q);
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vk = _mm256_loadu_pd(keys + i);
    int mask = _mm256_movemask_pd(_mm256_cmp_pd(vk, vq, _CMP_GT_OQ));
    if (mask != 0) return i + static_cast<uint32_t>(__builtin_ctz(mask));
  }
  for (; i < n; ++i) {
    if (keys[i] > q) break;
  }
  return i;
}
}  // namespace detail

inline uint32_t FirstGreater(const double* keys, uint32_t n, double q) {
  uint32_t lo = 0, hi = n;
  while (hi - lo > kSearchScanWindow) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (!(keys[mid] > q)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + detail::ScanGreater(keys + lo, hi - lo, q);
}

/// `q` and `p` must each have kMaxDims (= 4) doubles readable; lanes at and
/// beyond `dims` are masked off, so their contents are irrelevant.
inline bool Dominates(const double* q, const double* p, int dims) {
  __m256d vq = _mm256_loadu_pd(q);
  __m256d vp = _mm256_loadu_pd(p);
  int lt = _mm256_movemask_pd(_mm256_cmp_pd(vq, vp, _CMP_LT_OQ));
  return (lt & ((1 << dims) - 1)) == 0;
}

/// `lo`, `hi` and `p` must each have kMaxDims doubles readable.
inline bool ContainsHalfOpen(const double* lo, const double* hi,
                             const double* p, int dims) {
  __m256d vp = _mm256_loadu_pd(p);
  int below = _mm256_movemask_pd(
      _mm256_cmp_pd(vp, _mm256_loadu_pd(lo), _CMP_LT_OQ));
  int at_or_above = _mm256_movemask_pd(
      _mm256_cmp_pd(vp, _mm256_loadu_pd(hi), _CMP_GE_OQ));
  return ((below | at_or_above) & ((1 << dims) - 1)) == 0;
}

inline void AccumulateSigned(double* out, const double* parts,
                             const uint32_t* probe_of, double sign,
                             size_t count) {
  const __m256d vs = _mm256_set1_pd(sign);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(probe_of + i));
    __m256d vp = _mm256_i32gather_pd(parts, idx, 8);
    __m256d vo = _mm256_loadu_pd(out + i);
    _mm256_storeu_pd(out + i, _mm256_add_pd(vo, _mm256_mul_pd(vs, vp)));
  }
  for (; i < count; ++i) {
    out[i] += sign * parts[probe_of[i]];
  }
}

/// Widths 1/2/4 widen four lanes per step with cvtepu*_epi64; width 8 is a
/// vector add. Odd widths (3, 5, 6, 7) fall through to the scalar tail,
/// which computes the identical base + LE(src) sum.
inline void UnpackFixedWidth(const uint8_t* src, uint32_t count,
                             uint32_t width, uint64_t base, uint64_t* out) {
  if (width == 0) {
    for (uint32_t i = 0; i < count; ++i) out[i] = base;
    return;
  }
  const __m256i vb = _mm256_set1_epi64x(static_cast<long long>(base));
  uint32_t i = 0;
  switch (width) {
    case 1:
      for (; i + 4 <= count; i += 4) {
        int32_t raw;
        std::memcpy(&raw, src + i, 4);
        __m256i v = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(raw));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_add_epi64(v, vb));
      }
      break;
    case 2:
      for (; i + 4 <= count; i += 4) {
        __m128i raw = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(src + size_t{i} * 2));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_add_epi64(_mm256_cvtepu16_epi64(raw), vb));
      }
      break;
    case 4:
      for (; i + 4 <= count; i += 4) {
        __m128i raw = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + size_t{i} * 4));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_add_epi64(_mm256_cvtepu32_epi64(raw), vb));
      }
      break;
    case 8:
      for (; i + 4 <= count; i += 4) {
        __m256i raw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + size_t{i} * 8));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_add_epi64(raw, vb));
      }
      break;
    default:
      break;
  }
  for (; i < count; ++i) {
    uint64_t v = 0;
    std::memcpy(&v, src + size_t{i} * width, width);
    out[i] = base + v;
  }
}

#elif defined(BOXAGG_SIMD_NEON)

namespace detail {
inline uint32_t ScanGreater(const double* keys, uint32_t n, double q) {
  const float64x2_t vq = vdupq_n_f64(q);
  uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t gt = vcgtq_f64(vld1q_f64(keys + i), vq);
    if (vgetq_lane_u64(gt, 0) != 0) return i;
    if (vgetq_lane_u64(gt, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (keys[i] > q) break;
  }
  return i;
}

/// 4-bit lane mask of q[lane] < p[lane] over kMaxDims lanes.
inline int LessMask4(const double* q, const double* p) {
  uint64x2_t lo = vcltq_f64(vld1q_f64(q), vld1q_f64(p));
  uint64x2_t hi = vcltq_f64(vld1q_f64(q + 2), vld1q_f64(p + 2));
  return static_cast<int>((vgetq_lane_u64(lo, 0) & 1) |
                          ((vgetq_lane_u64(lo, 1) & 1) << 1) |
                          ((vgetq_lane_u64(hi, 0) & 1) << 2) |
                          ((vgetq_lane_u64(hi, 1) & 1) << 3));
}
}  // namespace detail

inline uint32_t FirstGreater(const double* keys, uint32_t n, double q) {
  uint32_t lo = 0, hi = n;
  while (hi - lo > kSearchScanWindow) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (!(keys[mid] > q)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + detail::ScanGreater(keys + lo, hi - lo, q);
}

inline bool Dominates(const double* q, const double* p, int dims) {
  return (detail::LessMask4(q, p) & ((1 << dims) - 1)) == 0;
}

inline bool ContainsHalfOpen(const double* lo, const double* hi,
                             const double* p, int dims) {
  // p < lo  ==  lo > p;  p >= hi  ==  !(p < hi) lane-wise, but NaN must map
  // to "no violation" exactly as the scalar comparisons do, so build the
  // >=-mask directly with vcgeq.
  uint64x2_t below_a = vcltq_f64(vld1q_f64(p), vld1q_f64(lo));
  uint64x2_t below_b = vcltq_f64(vld1q_f64(p + 2), vld1q_f64(lo + 2));
  uint64x2_t above_a = vcgeq_f64(vld1q_f64(p), vld1q_f64(hi));
  uint64x2_t above_b = vcgeq_f64(vld1q_f64(p + 2), vld1q_f64(hi + 2));
  int mask = static_cast<int>(
      ((vgetq_lane_u64(below_a, 0) | vgetq_lane_u64(above_a, 0)) & 1) |
      (((vgetq_lane_u64(below_a, 1) | vgetq_lane_u64(above_a, 1)) & 1) << 1) |
      (((vgetq_lane_u64(below_b, 0) | vgetq_lane_u64(above_b, 0)) & 1) << 2) |
      (((vgetq_lane_u64(below_b, 1) | vgetq_lane_u64(above_b, 1)) & 1) << 3));
  return (mask & ((1 << dims) - 1)) == 0;
}

inline void AccumulateSigned(double* out, const double* parts,
                             const uint32_t* probe_of, double sign,
                             size_t count) {
  const float64x2_t vs = vdupq_n_f64(sign);
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    float64x2_t vp = {parts[probe_of[i]], parts[probe_of[i + 1]]};
    float64x2_t vo = vld1q_f64(out + i);
    vst1q_f64(out + i, vaddq_f64(vo, vmulq_f64(vs, vp)));
  }
  for (; i < count; ++i) {
    out[i] += sign * parts[probe_of[i]];
  }
}

/// Widths 4 and 8 (the common dictionary-index and raw strips) widen two
/// lanes per step; other widths take the scalar tail, which computes the
/// identical base + LE(src) sum.
inline void UnpackFixedWidth(const uint8_t* src, uint32_t count,
                             uint32_t width, uint64_t base, uint64_t* out) {
  if (width == 0) {
    for (uint32_t i = 0; i < count; ++i) out[i] = base;
    return;
  }
  const uint64x2_t vb = vdupq_n_u64(base);
  uint32_t i = 0;
  if (width == 4) {
    for (; i + 2 <= count; i += 2) {
      uint32_t lanes[2];
      std::memcpy(lanes, src + size_t{i} * 4, 8);
      uint64x2_t v = vmovl_u32(vld1_u32(lanes));
      vst1q_u64(out + i, vaddq_u64(v, vb));
    }
  } else if (width == 8) {
    for (; i + 2 <= count; i += 2) {
      uint64_t lanes[2];
      std::memcpy(lanes, src + size_t{i} * 8, 16);
      vst1q_u64(out + i, vaddq_u64(vld1q_u64(lanes), vb));
    }
  }
  for (; i < count; ++i) {
    uint64_t v = 0;
    std::memcpy(&v, src + size_t{i} * width, width);
    out[i] = base + v;
  }
}

#else  // scalar fallback

inline uint32_t FirstGreater(const double* keys, uint32_t n, double q) {
  uint32_t lo = 0, hi = n;
  while (hi - lo > kSearchScanWindow) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (!(keys[mid] > q)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  while (lo < hi && !(keys[lo] > q)) ++lo;
  return lo;
}

inline bool Dominates(const double* q, const double* p, int dims) {
  return ref::Dominates(q, p, dims);
}

inline bool ContainsHalfOpen(const double* lo, const double* hi,
                             const double* p, int dims) {
  return ref::ContainsHalfOpen(lo, hi, p, dims);
}

inline void AccumulateSigned(double* out, const double* parts,
                             const uint32_t* probe_of, double sign,
                             size_t count) {
  ref::AccumulateSigned(out, parts, probe_of, sign, count);
}

inline void UnpackFixedWidth(const uint8_t* src, uint32_t count,
                             uint32_t width, uint64_t base, uint64_t* out) {
  ref::UnpackFixedWidth(src, count, width, base, out);
}

#endif

// Point-typed conveniences (Point carries exactly kMaxDims doubles, so the
// readability precondition of the raw overloads always holds).

inline bool Dominates(const Point& q, const Point& p, int dims) {
  return Dominates(q.coord.data(), p.coord.data(), dims);
}

/// Box::ContainsPointHalfOpen, vectorized (a Box is two full Points).
inline bool ContainsHalfOpen(const Box& b, const Point& p, int dims) {
  return ContainsHalfOpen(b.lo.coord.data(), b.hi.coord.data(),
                          p.coord.data(), dims);
}

// ---------------------------------------------------------------------------
// Software prefetch. No-ops cheaply when the target is already cached; used
// by the batch descent to warm the next probe group's child while the
// current group is being processed.

inline void PrefetchBytes(const void* p, size_t bytes) {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/3);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace simd
}  // namespace boxagg

#endif  // BOXAGG_SIMD_SIMD_H_
