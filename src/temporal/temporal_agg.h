// Temporal aggregation (Sec. 7 "Temporal Aggregation and Objects with
// Extent"): the cumulative temporal aggregation query — the aggregate over
// all records whose time interval intersects a query interval — is exactly
// the 1-dimensional box-sum problem, and the instantaneous variant (records
// whose interval contains a time instant) is its degenerate case. This
// module gives both a domain-shaped API over the corner-transform reduction
// (2 dominance indexes in 1-d, as the JSB-tree of [37] effectively
// maintains).

#ifndef BOXAGG_TEMPORAL_TEMPORAL_AGG_H_
#define BOXAGG_TEMPORAL_TEMPORAL_AGG_H_

#include "core/box_sum_index.h"

namespace boxagg {

/// \brief A time interval [start, end] (closed, like all boxes here).
struct Interval {
  double start = 0;
  double end = 0;

  [[nodiscard]] Box ToBox() const { return Box(Point(start), Point(end)); }
};

/// \brief Cumulative (and instantaneous) temporal SUM/COUNT/AVG over
/// interval records.
///
/// `Index` is any 1-d dominance-sum index (AggBTree wrapped by BaTree /
/// PackedBaTree / EcdfBTree with dims = 1).
template <class Index>
class TemporalAggregator {
 public:
  /// \param factory callable returning a fresh empty 1-d Index.
  template <class Factory>
  explicit TemporalAggregator(Factory&& factory)
      : sums_(1, factory), counts_(1, factory) {}

  /// Registers a record valid over `iv` with value `v`.
  Status Insert(const Interval& iv, double v) {
    if (iv.end < iv.start) {
      return Status::InvalidArgument("interval end before start");
    }
    BOXAGG_RETURN_NOT_OK(sums_.Insert(iv.ToBox(), v));
    return counts_.Insert(iv.ToBox(), 1.0);
  }

  /// Removes a previously inserted record.
  Status Erase(const Interval& iv, double v) {
    BOXAGG_RETURN_NOT_OK(sums_.Erase(iv.ToBox(), v));
    return counts_.Erase(iv.ToBox(), 1.0);
  }

  /// Cumulative SUM: total value of records intersecting [q.start, q.end].
  Status Sum(const Interval& q, double* out) const {
    return sums_.Query(q.ToBox(), out);
  }

  /// Cumulative COUNT over the query interval.
  Status Count(const Interval& q, double* out) const {
    return counts_.Query(q.ToBox(), out);
  }

  /// Cumulative AVG (0 when no record intersects).
  Status Avg(const Interval& q, double* out) const {
    double s, c;
    BOXAGG_RETURN_NOT_OK(sums_.Query(q.ToBox(), &s));
    BOXAGG_RETURN_NOT_OK(counts_.Query(q.ToBox(), &c));
    *out = c < 0.5 ? 0.0 : s / c;
    return Status::OK();
  }

  /// Instantaneous SUM at time `t`: records whose interval contains t.
  Status SumAt(double t, double* out) const {
    return Sum(Interval{t, t}, out);
  }

  /// Instantaneous COUNT at time `t`.
  Status CountAt(double t, double* out) const {
    return Count(Interval{t, t}, out);
  }

  Status PageCount(uint64_t* out) const {
    uint64_t a = 0, b = 0;
    BOXAGG_RETURN_NOT_OK(sums_.PageCount(&a));
    BOXAGG_RETURN_NOT_OK(counts_.PageCount(&b));
    *out = a + b;
    return Status::OK();
  }

 private:
  BoxSumIndex<Index> sums_;
  BoxSumIndex<Index> counts_;
};

}  // namespace boxagg

#endif  // BOXAGG_TEMPORAL_TEMPORAL_AGG_H_
