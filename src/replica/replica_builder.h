// ReplicaBuilder: snapshots a live PackedBaTree or AggBTree into the
// compact replica format (replica/replica_format.h) that CompactReplica
// serves queries from.
//
// The build is a single breadth-first walk over the source forest — the
// main tree plus every spilled border tree — that assigns each node a BFS
// ordinal. Children of one internal node are enqueued consecutively, so the
// encoded node stores one varint `first_child` instead of per-record
// PageIds; spilled border roots are enqueued after the children and keep
// their explicit ordinals in the border sections. BFS order also clusters
// each tree level contiguously in the data-page run, which is what makes
// top-of-tree pages stay resident in a small buffer pool.
//
// The walk doubles as dictionary collection: every coordinate double and
// every stored leaf/border value feeds a per-replica sorted dictionary, and
// the strip encoder then picks raw vs dictionary-index form per column.
// Values are captured losslessly (order-mapped bit patterns, never
// re-aggregated), which is what keeps replica query results byte-identical
// to the source tree. Subtotals and aggregate sums stay raw — they are
// near-unique, so dictionary indexes would not pay for themselves.

#ifndef BOXAGG_REPLICA_REPLICA_BUILDER_H_
#define BOXAGG_REPLICA_REPLICA_BUILDER_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "batree/packed_ba_tree.h"
#include "bptree/agg_btree.h"
#include "core/point_entry.h"
#include "geom/box.h"
#include "geom/point.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replica/replica_format.h"
#include "storage/buffer_pool.h"
#include "storage/page_header.h"

namespace boxagg {

template <class V>
class ReplicaBuilder {
 public:
  static_assert(std::is_trivially_copyable_v<V> && sizeof(V) == 8,
                "replica value strips assume trivially copyable 8-byte V");

  explicit ReplicaBuilder(BufferPool* pool) : pool_(pool) {}

  /// Snapshots `src` (and all of its spilled border trees) into a new
  /// replica; `*root_out` receives the replica's header PageId. The source
  /// tree is read-only during the build and left untouched.
  Status Build(const PackedBaTree<V>& src, PageId* root_out) {
    return BuildForest(src.root(), src.dims(), root_out);
  }

  /// Snapshots a bare aggregate B+-tree (the 1-d storage corner case and
  /// the base of every spilled border stack).
  Status Build(const AggBTree<V>& src, PageId* root_out) {
    return BuildForest(src.root(), 1, root_out);
  }

 private:
  using Pbt = PackedBaTree<V>;
  using Agg = AggBTree<V>;

  struct BorderEnc {
    uint8_t tag = replica::kBorderEmpty;
    uint64_t spill_ord = 0;
    std::vector<PointEntry<V>> entries;  // inline form, sorted by source
  };

  struct NodeImage {
    uint8_t kind = 0;
    int dims = 0;
    unsigned level = 0;
    uint32_t n = 0;
    uint64_t first_child = 0;
    std::vector<Point> pts;      // ba leaf points
    std::vector<Box> boxes;      // ba internal record boxes
    std::vector<double> keys;    // agg leaf keys / agg internal lowkeys
    std::vector<V> vals;         // leaf values / agg internal sums
    std::vector<std::vector<BorderEnc>> borders;  // [record][dim]
  };

  struct WorkItem {
    PageId pid = kInvalidPageId;
    int dims = 0;
    unsigned level = 0;
  };

  Status BuildForest(PageId src_root, int dims, PageId* root_out) {
    // Rebuild observability: post-commit replica rebuild hooks run this on
    // the writer thread, so the span/latency make publish-to-fresh-replica
    // lag directly visible in traces and windowed percentiles.
    obs::Span build_span("replica.build", "replica");
    obs::MetricsRegistry* reg = obs::MetricsRegistry::Global();
    const uint64_t t0 = reg != nullptr ? obs::NowMicros() : 0;
    Status st = BuildForestInner(src_root, dims, root_out, &build_span);
    if (reg != nullptr) {
      reg->GetCounter(st.ok() ? "replica.builds" : "replica.build_failures")
          ->Inc();
      reg->GetHistogram("replica.build_latency_us", obs::LatencyBucketsUs())
          ->Record(static_cast<double>(obs::NowMicros() - t0));
    }
    return st;
  }

  Status BuildForestInner(PageId src_root, int dims, PageId* root_out,
                          obs::Span* build_span) {
    std::vector<NodeImage> nodes;
    std::vector<uint64_t> key_toks, val_toks;
    uint64_t entry_count = 0;
    std::array<uint64_t, replica::kHdrLevelSlots> level_counts{};
    uint32_t level_count = 0;

    if (src_root != kInvalidPageId) {
      std::vector<WorkItem> items;
      items.push_back(WorkItem{src_root, dims, 0});
      for (size_t ord = 0; ord < items.size(); ++ord) {
        const WorkItem it = items[ord];
        NodeImage nd;
        nd.dims = it.dims;
        nd.level = it.level;
        BOXAGG_RETURN_NOT_OK(LoadSource(it, &items, &nd));
        CollectTokens(nd, &key_toks, &val_toks, &entry_count);
        const size_t slot = it.level < replica::kHdrLevelSlots
                                ? it.level
                                : replica::kHdrLevelSlots - 1;
        ++level_counts[slot];
        if (static_cast<uint32_t>(slot) + 1 > level_count) {
          level_count = static_cast<uint32_t>(slot) + 1;
        }
        nodes.push_back(std::move(nd));
      }
    }

    Seal(&key_toks);
    Seal(&val_toks);

    // A dictionary only pays when tokens repeat enough for the per-strip
    // index savings to beat the 8 bytes/entry the dictionary itself costs
    // in the meta chain (1-d trees with unique values are the losing
    // case). Price all four keep/drop combinations and keep the cheapest.
    const std::vector<uint64_t>* key_dict = nullptr;
    const std::vector<uint64_t>* val_dict = nullptr;
    {
      const std::vector<uint64_t>* kd_opts[2] = {&key_toks, nullptr};
      const std::vector<uint64_t>* vd_opts[2] = {&val_toks, nullptr};
      uint64_t best = ~uint64_t{0};
      std::vector<uint8_t> bytes;
      for (const auto* kd : kd_opts) {
        for (const auto* vd : vd_opts) {
          uint64_t total = 8 * ((kd ? kd->size() : 0) +
                                (vd ? vd->size() : 0));
          for (const NodeImage& nd : nodes) {
            bytes.clear();
            EncodeNode(nd, kd, vd, &bytes);
            total += bytes.size();
          }
          if (total < best) {
            best = total;
            key_dict = kd;
            val_dict = vd;
          }
        }
      }
      if (key_dict == nullptr) key_toks.clear();
      if (val_dict == nullptr) val_toks.clear();
    }

    // Encode the node stream and pack it into data pages front to back;
    // nodes never span pages, and BFS order keeps levels clustered.
    const uint32_t page_size = pool_->file()->page_size();
    const uint32_t capacity = page_size - replica::kDataHeaderBytes;
    std::vector<std::vector<uint8_t>> page_payloads;
    std::vector<uint16_t> page_nodes;
    std::vector<uint64_t> dir;
    uint64_t data_bytes = 0;
    for (const NodeImage& nd : nodes) {
      std::vector<uint8_t> bytes;
      EncodeNode(nd, key_dict, val_dict, &bytes);
      if (bytes.size() > capacity) {
        return Status::InvalidArgument(
            "replica node larger than a data page; use a larger page size");
      }
      if (page_payloads.empty() ||
          page_payloads.back().size() + bytes.size() > capacity) {
        page_payloads.emplace_back();
        page_nodes.push_back(0);
      }
      std::vector<uint8_t>& pl = page_payloads.back();
      dir.push_back((static_cast<uint64_t>(page_payloads.size() - 1) << 32) |
                    (replica::kDataHeaderBytes + pl.size()));
      pl.insert(pl.end(), bytes.begin(), bytes.end());
      ++page_nodes.back();
      data_bytes += bytes.size();
    }

    std::vector<PageId> data_pages(page_payloads.size());
    for (size_t i = 0; i < page_payloads.size(); ++i) {
      const std::vector<uint8_t>& pl = page_payloads[i];
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->New(&g));
      Page* p = g.page();
      p->WriteAt<uint16_t>(0, replica::kDataPageType);
      p->WriteAt<uint16_t>(replica::kDataNodeCount, page_nodes[i]);
      p->WriteAt<uint32_t>(replica::kDataPayloadLen,
                           static_cast<uint32_t>(pl.size()));
      p->WriteAt<uint32_t>(replica::kDataCrc, Crc32c(pl.data(), pl.size()));
      p->WriteBytes(replica::kDataHeaderBytes, pl.data(), pl.size());
      g.MarkDirty();
      data_pages[i] = g.id();
    }

    // Meta payload: data page ids, directory, then both dictionaries, all
    // as raw u64s, chunked over the chain. Pages are written back to front
    // so each one knows its successor's id.
    std::vector<uint8_t> meta;
    AppendU64s(&meta, data_pages.data(), data_pages.size());
    AppendU64s(&meta, dir.data(), dir.size());
    AppendU64s(&meta, key_toks.data(), key_toks.size());
    AppendU64s(&meta, val_toks.data(), val_toks.size());
    const uint32_t meta_cap = page_size - replica::kMetaHeaderBytes;
    const uint64_t meta_page_count =
        (meta.size() + meta_cap - 1) / meta_cap;  // 0 when meta is empty
    PageId first_meta = kInvalidPageId;
    for (uint64_t i = meta_page_count; i-- > 0;) {
      const uint64_t off = i * meta_cap;
      const uint32_t len = static_cast<uint32_t>(
          std::min<uint64_t>(meta_cap, meta.size() - off));
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->New(&g));
      Page* p = g.page();
      p->WriteAt<uint16_t>(0, replica::kMetaPageType);
      p->WriteAt<uint16_t>(2, 0);
      p->WriteAt<uint32_t>(replica::kMetaPayloadLen, len);
      p->WriteAt<uint64_t>(replica::kMetaNext, first_meta);
      p->WriteAt<uint32_t>(replica::kMetaCrc, Crc32c(meta.data() + off, len));
      p->WriteBytes(replica::kMetaHeaderBytes, meta.data() + off, len);
      g.MarkDirty();
      first_meta = g.id();
    }

    PageGuard g;
    BOXAGG_RETURN_NOT_OK(pool_->New(&g));
    Page* p = g.page();
    p->WriteAt<uint16_t>(replica::kHdrType, replica::kHeaderPageType);
    p->WriteAt<uint16_t>(replica::kHdrVersion, replica::kFormatVersion);
    p->WriteAt<uint32_t>(replica::kHdrDims, static_cast<uint32_t>(dims));
    p->WriteAt<uint32_t>(replica::kHdrValueSize, sizeof(V));
    p->WriteAt<uint32_t>(replica::kHdrLevelCount, level_count);
    p->WriteAt<uint64_t>(replica::kHdrNodeCount, nodes.size());
    p->WriteAt<uint64_t>(replica::kHdrDataPageCount, data_pages.size());
    p->WriteAt<uint64_t>(replica::kHdrMetaPageCount, meta_page_count);
    p->WriteAt<uint64_t>(replica::kHdrKeyDictCount, key_toks.size());
    p->WriteAt<uint64_t>(replica::kHdrValDictCount, val_toks.size());
    p->WriteAt<uint64_t>(replica::kHdrEntryCount, entry_count);
    p->WriteAt<uint64_t>(replica::kHdrFirstMeta, first_meta);
    p->WriteAt<uint64_t>(replica::kHdrDataBytes, data_bytes);
    for (uint32_t i = 0; i < replica::kHdrLevelSlots; ++i) {
      p->WriteAt<uint64_t>(replica::kHdrLevels + i * 8, level_counts[i]);
    }
    p->WriteAt<uint32_t>(replica::kHdrCrc,
                         Crc32c(p->data(), replica::kHdrCrc));
    g.MarkDirty();
    *root_out = g.id();
    build_span->SetPagesFetched(
        static_cast<int64_t>(data_pages.size() + meta_page_count + 1));
    build_span->SetProbes(static_cast<int64_t>(nodes.size()));
    return Status::OK();
  }

  /// Loads the source node behind `it` into `nd`, enqueuing its children
  /// (consecutively) and spilled border roots on `items`.
  Status LoadSource(const WorkItem& it, std::vector<WorkItem>* items,
                    NodeImage* nd) const {
    if (it.dims == 1) return LoadAggNode(it, items, nd);
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(pool_->Fetch(it.pid, &g));
    const Page* p = g.page();
    const uint16_t type = Pbt::PageType(p);
    if (type == Pbt::kLeaf) {
      const uint32_t n = Pbt::LeafCount(p);
      nd->kind = replica::kNodeBaLeaf;
      nd->n = n;
      nd->pts.resize(n);
      nd->vals.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        nd->pts[i] = Pbt::LeafPoint(p, i);
        Pbt::ReadLeafValue(p, i, &nd->vals[i]);
      }
      return Status::OK();
    }
    if (type != Pbt::kInternal) {
      return CorruptionAt(it.pid, "replica-builder: unexpected page type " +
                                      std::to_string(type) +
                                      " in a packed BA-tree");
    }
    g.Release();
    Pbt handle(pool_, it.dims, it.pid);
    std::vector<typename Pbt::RecImage> recs;
    BOXAGG_RETURN_NOT_OK(handle.LoadNode(it.pid, &recs));
    const uint32_t n = static_cast<uint32_t>(recs.size());
    nd->kind = replica::kNodeBaInternal;
    nd->n = n;
    nd->first_child = items->size();
    for (const auto& r : recs) {
      items->push_back(WorkItem{r.child, it.dims, it.level + 1});
    }
    nd->boxes.resize(n);
    nd->vals.resize(n);
    nd->borders.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      nd->boxes[i] = recs[i].box;
      nd->vals[i] = recs[i].subtotal;
      nd->borders[i].resize(static_cast<size_t>(it.dims));
      for (int b = 0; b < it.dims; ++b) {
        const auto& src = recs[i].border[static_cast<size_t>(b)];
        BorderEnc& enc = nd->borders[i][static_cast<size_t>(b)];
        if (src.Empty()) continue;
        if (src.IsTree()) {
          enc.tag = replica::kBorderSpill;
          enc.spill_ord = items->size();
          items->push_back(WorkItem{src.tree, it.dims - 1, it.level + 1});
        } else {
          enc.tag = replica::kBorderInline;
          enc.entries = src.inline_entries;
        }
      }
    }
    return Status::OK();
  }

  Status LoadAggNode(const WorkItem& it, std::vector<WorkItem>* items,
                     NodeImage* nd) const {
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(pool_->Fetch(it.pid, &g));
    const Page* p = g.page();
    const uint32_t page_size = pool_->file()->page_size();
    const uint16_t type = Agg::Type(p);
    const uint32_t n = Agg::Count(p);
    nd->n = n;
    nd->keys.resize(n);
    nd->vals.resize(n);
    if (type == Agg::kLeaf) {
      nd->kind = replica::kNodeAggLeaf;
      for (uint32_t i = 0; i < n; ++i) {
        nd->keys[i] = p->ReadAt<double>(Agg::LeafKeyOffset(i));
        p->ReadBytes(Agg::LeafValueOffset(page_size, i), &nd->vals[i],
                     sizeof(V));
      }
      return Status::OK();
    }
    if (type != Agg::kInternal) {
      return CorruptionAt(it.pid, "replica-builder: unexpected page type " +
                                      std::to_string(type) +
                                      " in an aggregate B+-tree");
    }
    nd->kind = replica::kNodeAggInternal;
    nd->first_child = items->size();
    for (uint32_t i = 0; i < n; ++i) {
      nd->keys[i] = p->ReadAt<double>(Agg::InternalLowKeyOffset(i));
      p->ReadBytes(Agg::InternalSumOffset(page_size, i), &nd->vals[i],
                   sizeof(V));
      items->push_back(
          WorkItem{p->ReadAt<uint64_t>(Agg::InternalChildOffset(page_size, i)),
                   1, it.level + 1});
    }
    return Status::OK();
  }

  static uint64_t MapValue(const V& v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return replica::MapOrderedBits(bits);
  }

  /// Feeds every coordinate into the key dictionary, every leaf/border
  /// value into the value dictionary, and counts stored entries. Subtotals
  /// and aggregate sums stay out of the dictionaries (raw strips).
  static void CollectTokens(const NodeImage& nd,
                            std::vector<uint64_t>* key_toks,
                            std::vector<uint64_t>* val_toks,
                            uint64_t* entry_count) {
    switch (nd.kind) {
      case replica::kNodeBaLeaf:
        for (const Point& pt : nd.pts) {
          for (int d = 0; d < nd.dims; ++d) {
            key_toks->push_back(replica::MapDouble(pt[d]));
          }
        }
        for (const V& v : nd.vals) val_toks->push_back(MapValue(v));
        *entry_count += nd.n;
        break;
      case replica::kNodeAggLeaf:
        for (double k : nd.keys) key_toks->push_back(replica::MapDouble(k));
        for (const V& v : nd.vals) val_toks->push_back(MapValue(v));
        *entry_count += nd.n;
        break;
      case replica::kNodeAggInternal:
        for (double k : nd.keys) key_toks->push_back(replica::MapDouble(k));
        break;
      case replica::kNodeBaInternal:
        for (const Box& bx : nd.boxes) {
          for (int d = 0; d < nd.dims; ++d) {
            key_toks->push_back(replica::MapDouble(bx.lo[d]));
            key_toks->push_back(replica::MapDouble(bx.hi[d]));
          }
        }
        for (const auto& rec : nd.borders) {
          for (const BorderEnc& be : rec) {
            if (be.tag != replica::kBorderInline) continue;
            for (const auto& e : be.entries) {
              for (int d = 0; d < nd.dims - 1; ++d) {
                key_toks->push_back(replica::MapDouble(e.pt[d]));
              }
              val_toks->push_back(MapValue(e.value));
            }
            *entry_count += be.entries.size();
          }
        }
        break;
      default:
        break;
    }
  }

  static void Seal(std::vector<uint64_t>* toks) {
    std::sort(toks->begin(), toks->end());
    toks->erase(std::unique(toks->begin(), toks->end()), toks->end());
  }

  static void AppendU64s(std::vector<uint8_t>* out, const uint64_t* v,
                         size_t n) {
    const uint8_t* b = reinterpret_cast<const uint8_t*>(v);
    out->insert(out->end(), b, b + n * sizeof(uint64_t));
  }

  static void AppendValueStrip(const V* vals, uint32_t m,
                               const std::vector<uint64_t>* val_dict,
                               std::vector<uint8_t>* out) {
    std::vector<uint64_t> tok(m);
    for (uint32_t i = 0; i < m; ++i) tok[i] = MapValue(vals[i]);
    replica::EncodeStrip(tok.data(), m, val_dict, out);
  }

  /// Serializes one node exactly as CompactReplica's descent parses it.
  /// Either dictionary may be null (forces the raw strip forms).
  static void EncodeNode(const NodeImage& nd,
                         const std::vector<uint64_t>* key_dict,
                         const std::vector<uint64_t>* val_dict,
                         std::vector<uint8_t>* out) {
    out->push_back(nd.kind);
    replica::AppendVarint(out, nd.n);
    std::vector<uint64_t> tok;
    switch (nd.kind) {
      case replica::kNodeBaLeaf: {
        tok.resize(nd.n);
        for (int d = 0; d < nd.dims; ++d) {
          for (uint32_t i = 0; i < nd.n; ++i) {
            tok[i] = replica::MapDouble(nd.pts[i][d]);
          }
          replica::EncodeStrip(tok.data(), nd.n, key_dict, out);
        }
        AppendValueStrip(nd.vals.data(), nd.n, val_dict, out);
        break;
      }
      case replica::kNodeAggLeaf: {
        tok.resize(nd.n);
        for (uint32_t i = 0; i < nd.n; ++i) {
          tok[i] = replica::MapDouble(nd.keys[i]);
        }
        replica::EncodeStrip(tok.data(), nd.n, key_dict, out);
        AppendValueStrip(nd.vals.data(), nd.n, val_dict, out);
        break;
      }
      case replica::kNodeAggInternal: {
        replica::AppendVarint(out, nd.first_child);
        tok.resize(nd.n);
        for (uint32_t i = 0; i < nd.n; ++i) {
          tok[i] = replica::MapDouble(nd.keys[i]);
        }
        replica::EncodeStrip(tok.data(), nd.n, key_dict, out);
        AppendValueStrip(nd.vals.data(), nd.n, nullptr, out);
        break;
      }
      case replica::kNodeBaInternal: {
        replica::AppendVarint(out, nd.first_child);
        tok.resize(nd.n);
        for (int side = 0; side < 2; ++side) {
          for (int d = 0; d < nd.dims; ++d) {
            for (uint32_t i = 0; i < nd.n; ++i) {
              const Box& bx = nd.boxes[i];
              tok[i] = replica::MapDouble(side == 0 ? bx.lo[d] : bx.hi[d]);
            }
            replica::EncodeStrip(tok.data(), nd.n, key_dict, out);
          }
        }
        AppendValueStrip(nd.vals.data(), nd.n, nullptr, out);
        for (uint32_t i = 0; i < nd.n; ++i) {
          for (int b = 0; b < nd.dims; ++b) {
            const BorderEnc& be = nd.borders[i][static_cast<size_t>(b)];
            out->push_back(be.tag);
            if (be.tag == replica::kBorderEmpty) continue;
            if (be.tag == replica::kBorderSpill) {
              replica::AppendVarint(out, be.spill_ord);
              continue;
            }
            const uint32_t cnt = static_cast<uint32_t>(be.entries.size());
            replica::AppendVarint(out, cnt);
            tok.resize(cnt);
            for (int d = 0; d < nd.dims - 1; ++d) {
              for (uint32_t k = 0; k < cnt; ++k) {
                tok[k] = replica::MapDouble(be.entries[k].pt[d]);
              }
              replica::EncodeStrip(tok.data(), cnt, key_dict, out);
            }
            std::vector<V> bv(cnt);
            for (uint32_t k = 0; k < cnt; ++k) bv[k] = be.entries[k].value;
            AppendValueStrip(bv.data(), cnt, val_dict, out);
          }
        }
        break;
      }
      default:
        break;
    }
  }

  BufferPool* pool_;
};

}  // namespace boxagg

#endif  // BOXAGG_REPLICA_REPLICA_BUILDER_H_
