// On-page format of the compact read replica (the v3 .bag addition; see
// core/bag_format.h and DESIGN.md §13).
//
// A replica is one header page, a chain of meta pages, and a run of data
// pages holding the breadth-first node stream:
//
//   header page (type 20)
//     u16 type, u16 version, u32 dims, u32 value_size, u32 level_count,
//     u64 node_count, u64 data_page_count, u64 meta_page_count,
//     u64 key_dict_count, u64 val_dict_count, u64 entry_count,
//     u64 first_meta PageId, u64 data_bytes, u64 levels[16], u32 crc
//   meta page (type 21, chained via `next`)
//     u16 type, u16 pad, u32 payload_len, u64 next PageId, u32 crc;
//     payload concatenation across the chain:
//       u64 data_page_ids[data_page_count]
//       u64 directory[node_count]      (page_index << 32 | byte_offset)
//       u64 key_dict[key_dict_count]   (order-mapped doubles, ascending)
//       u64 val_dict[val_dict_count]   (order-mapped V patterns, ascending)
//   data page (type 22)
//     u16 type, u16 node_count, u32 payload_len, u32 crc; node stream
//
// Nodes carry no child pointers: a breadth-first ordinal assignment places
// every node's children consecutively, so one varint `first_child` per
// internal node replaces the per-record PageIds, and the directory maps
// ordinal -> (data page, offset). Key and value columns are stored as
// "strips": a one-byte header (byte width, delta-vs-frame-of-reference,
// dictionary-vs-raw), a u64 base, then fixed-width packed payload that
// simd::UnpackFixedWidth decodes. All query-time reads are prefix reads
// (leaf cutoffs, routing prefixes, full scans), so delta strips never need
// random access.

#ifndef BOXAGG_REPLICA_REPLICA_FORMAT_H_
#define BOXAGG_REPLICA_REPLICA_FORMAT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "simd/simd.h"

namespace boxagg {
namespace replica {

inline constexpr uint16_t kHeaderPageType = 20;
inline constexpr uint16_t kMetaPageType = 21;
inline constexpr uint16_t kDataPageType = 22;
inline constexpr uint16_t kFormatVersion = 1;

// Header-page field offsets; the crc covers bytes [0, kHdrCrc).
inline constexpr uint32_t kHdrType = 0;
inline constexpr uint32_t kHdrVersion = 2;
inline constexpr uint32_t kHdrDims = 4;
inline constexpr uint32_t kHdrValueSize = 8;
inline constexpr uint32_t kHdrLevelCount = 12;
inline constexpr uint32_t kHdrNodeCount = 16;
inline constexpr uint32_t kHdrDataPageCount = 24;
inline constexpr uint32_t kHdrMetaPageCount = 32;
inline constexpr uint32_t kHdrKeyDictCount = 40;
inline constexpr uint32_t kHdrValDictCount = 48;
inline constexpr uint32_t kHdrEntryCount = 56;
inline constexpr uint32_t kHdrFirstMeta = 64;
inline constexpr uint32_t kHdrDataBytes = 72;
inline constexpr uint32_t kHdrLevels = 80;
inline constexpr uint32_t kHdrLevelSlots = 16;
inline constexpr uint32_t kHdrCrc = 208;

// Meta-page header; the crc covers the payload bytes only.
inline constexpr uint32_t kMetaPayloadLen = 4;
inline constexpr uint32_t kMetaNext = 8;
inline constexpr uint32_t kMetaCrc = 16;
inline constexpr uint32_t kMetaHeaderBytes = 24;

// Data-page header; the crc covers the payload bytes only.
inline constexpr uint32_t kDataNodeCount = 2;
inline constexpr uint32_t kDataPayloadLen = 4;
inline constexpr uint32_t kDataCrc = 8;
inline constexpr uint32_t kDataHeaderBytes = 12;

// Node stream: u8 kind, varint entry count, then the kind-specific strips.
inline constexpr uint8_t kNodeBaLeaf = 1;
inline constexpr uint8_t kNodeBaInternal = 2;
inline constexpr uint8_t kNodeAggLeaf = 3;
inline constexpr uint8_t kNodeAggInternal = 4;

// Per-record, per-dimension border section tags inside a kNodeBaInternal.
inline constexpr uint8_t kBorderEmpty = 0;
inline constexpr uint8_t kBorderInline = 1;  // varint cnt, coord strips, vals
inline constexpr uint8_t kBorderSpill = 2;   // varint ordinal of spilled root

// Strip header byte: low nibble = payload byte width (0..8), plus two flags.
inline constexpr uint8_t kStripWidthMask = 0x0f;
inline constexpr uint8_t kStripDeltaBit = 0x10;  // gaps, else frame-of-ref
inline constexpr uint8_t kStripDictBit = 0x20;   // dictionary indexes

// ---------------------------------------------------------------------------
// Order-preserving double <-> u64 mapping. Ascending doubles (IEEE total
// order over the patterns the trees store) map to ascending u64s, so sorted
// key columns become monotone integer strips; the map is a bijection, which
// is what keeps replica arithmetic byte-identical to the source tree.

inline uint64_t MapOrderedBits(uint64_t bits) {
  return (bits & 0x8000000000000000ull) != 0
             ? ~bits
             : (bits | 0x8000000000000000ull);
}

inline uint64_t UnmapOrderedBits(uint64_t u) {
  return (u & 0x8000000000000000ull) != 0 ? (u & 0x7fffffffffffffffull) : ~u;
}

inline uint64_t MapDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return MapOrderedBits(bits);
}

inline double UnmapDouble(uint64_t u) {
  const uint64_t bits = UnmapOrderedBits(u);
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

// ---------------------------------------------------------------------------
// LEB128 varints.

inline void AppendVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

// LINT:hot-path — replica strip/varint decode: no heap allocation (lint.sh)
inline uint64_t ReadVarint(const uint8_t** p) {
  const uint8_t* s = *p;
  uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    const uint8_t b = *s++;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *p = s;
  return v;
}

// ---------------------------------------------------------------------------
// Strip decode. A strip stores `m` u64 tokens as header byte + u64 base +
// packed payload; empty strips (m == 0) are never emitted.

struct StripRef {
  uint8_t header = 0;
  uint64_t base = 0;
  const uint8_t* payload = nullptr;
};

inline uint32_t StripPayloadBytes(uint8_t header, uint32_t m) {
  const uint32_t w = header & kStripWidthMask;
  const uint32_t items = (header & kStripDeltaBit) != 0 ? m - 1 : m;
  return items * w;
}

/// Parses the strip at *p (stored count `m` > 0) and advances past it.
inline StripRef ParseStrip(const uint8_t** p, uint32_t m) {
  StripRef s;
  const uint8_t* c = *p;
  s.header = *c++;
  std::memcpy(&s.base, c, sizeof(s.base));
  c += sizeof(s.base);
  s.payload = c;
  *p = c + StripPayloadBytes(s.header, m);
  return s;
}

/// Advances *p past a strip of stored count `m` without decoding it.
inline void SkipStrip(const uint8_t** p, uint32_t m) {
  const uint8_t header = **p;
  *p += 1 + sizeof(uint64_t) + StripPayloadBytes(header, m);
}

/// Decodes the first `take` tokens of a strip (take <= stored count). Both
/// modes decode a prefix sequentially, which is all the descent ever needs.
inline void DecodeStripU64(const StripRef& s, uint32_t take, uint64_t* out) {
  if (take == 0) return;
  const uint32_t w = s.header & kStripWidthMask;
  if ((s.header & kStripDeltaBit) != 0) {
    out[0] = s.base;
    simd::UnpackFixedWidth(s.payload, take - 1, w, 0, out + 1);
    for (uint32_t i = 1; i < take; ++i) out[i] += out[i - 1];
  } else {
    simd::UnpackFixedWidth(s.payload, take, w, s.base, out);
  }
}
// LINT:hot-path-end

// ---------------------------------------------------------------------------
// Strip encode (builder side only; free to allocate). Chooses the cheapest
// of {frame-of-reference, delta} x {raw order-mapped, dictionary index}.

inline uint32_t BytesForSpan(uint64_t span) {
  uint32_t w = 0;
  while (span != 0) {
    ++w;
    span >>= 8;
  }
  return w;
}

namespace detail {

struct StripPlan {
  uint8_t header = 0;
  uint64_t base = 0;
  uint32_t bytes = 0;  // total encoded size including header + base
};

/// Best FOR-or-delta plan for one token sequence (delta only if monotone).
inline StripPlan PlanTokens(const uint64_t* tok, uint32_t m, uint8_t flags) {
  uint64_t min = tok[0], max = tok[0], max_gap = 0;
  bool monotone = true;
  for (uint32_t i = 1; i < m; ++i) {
    if (tok[i] < min) min = tok[i];
    if (tok[i] > max) max = tok[i];
    if (tok[i] < tok[i - 1]) {
      monotone = false;
    } else if (tok[i] - tok[i - 1] > max_gap) {
      max_gap = tok[i] - tok[i - 1];
    }
  }
  StripPlan plan;
  const uint32_t for_w = BytesForSpan(max - min);
  plan.header = static_cast<uint8_t>(for_w) | flags;
  plan.base = min;
  plan.bytes = 1 + 8 + m * for_w;
  if (monotone) {
    const uint32_t delta_w = BytesForSpan(max_gap);
    const uint32_t delta_bytes = 1 + 8 + (m - 1) * delta_w;
    if (delta_bytes < plan.bytes) {
      plan.header = static_cast<uint8_t>(delta_w) | kStripDeltaBit | flags;
      plan.base = tok[0];
      plan.bytes = delta_bytes;
    }
  }
  return plan;
}

inline void AppendPlanned(const StripPlan& plan, const uint64_t* tok,
                          uint32_t m, std::vector<uint8_t>* out) {
  out->push_back(plan.header);
  const uint8_t* bp = reinterpret_cast<const uint8_t*>(&plan.base);
  out->insert(out->end(), bp, bp + 8);
  const uint32_t w = plan.header & kStripWidthMask;
  if (w == 0) return;
  const bool delta = (plan.header & kStripDeltaBit) != 0;
  for (uint32_t i = delta ? 1 : 0; i < m; ++i) {
    const uint64_t d = delta ? tok[i] - tok[i - 1] : tok[i] - plan.base;
    const uint8_t* dp = reinterpret_cast<const uint8_t*>(&d);
    out->insert(out->end(), dp, dp + w);
  }
}

}  // namespace detail

/// Appends the cheapest encoding of `mapped[0..m)` (order-mapped tokens).
/// With a dictionary (sorted unique mapped values that is guaranteed to
/// contain every token), the index form competes against the raw form.
inline void EncodeStrip(const uint64_t* mapped, uint32_t m,
                        const std::vector<uint64_t>* dict,
                        std::vector<uint8_t>* out) {
  if (m == 0) return;
  detail::StripPlan raw = detail::PlanTokens(mapped, m, 0);
  if (dict == nullptr) {
    detail::AppendPlanned(raw, mapped, m, out);
    return;
  }
  std::vector<uint64_t> ix(m);
  for (uint32_t i = 0; i < m; ++i) {
    ix[i] = static_cast<uint64_t>(
        std::lower_bound(dict->begin(), dict->end(), mapped[i]) -
        dict->begin());
  }
  detail::StripPlan via_dict = detail::PlanTokens(ix.data(), m, kStripDictBit);
  if (via_dict.bytes < raw.bytes) {
    detail::AppendPlanned(via_dict, ix.data(), m, out);
  } else {
    detail::AppendPlanned(raw, mapped, m, out);
  }
}

}  // namespace replica
}  // namespace boxagg

#endif  // BOXAGG_REPLICA_REPLICA_FORMAT_H_
