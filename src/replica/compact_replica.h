// CompactReplica: the compressed, immutable read backend built by
// ReplicaBuilder (replica/replica_builder.h) from a live PackedBaTree or
// AggBTree snapshot. Format details live in replica/replica_format.h;
// DESIGN.md §13 has the full layout diagram and the rebuild plan.
//
// The replica plugs into BoxSumIndex unchanged: it answers DominanceSum and
// DominanceSumBatch with results BYTE-IDENTICAL to the source tree — the
// descent mirrors PackedBaTree / AggBTree addition for addition (same
// values, same order, FP addition is not associative), it only reads them
// from delta/dictionary-compressed strips instead of pointer-rich pages.
// Mutation entry points refuse with InvalidArgument: replicas are rebuilt
// from the writer tree at generation publish, never patched in place.
//
// Concurrency: Open() loads the directory / dictionary cache from the meta
// chain and must complete before the replica is queried from multiple
// threads (BoxSumIndex handles are copied into ParallelQueryExecutor
// workers; the cache is shared through a shared_ptr, so copies are cheap
// and all see the same immutable cache). Queries open lazily as a
// single-threaded convenience.
//
// I/O discipline: one BufferPool::Fetch per node visit, paired with one
// obs::NoteNodeVisit — the replica keeps boxagg_stats' attribution
// identity sum(node_visits) == logical_reads intact. Batched descents note
// saved probe fetches and PrefetchHint the next group's page exactly like
// the live trees.

#ifndef BOXAGG_REPLICA_COMPACT_REPLICA_H_
#define BOXAGG_REPLICA_COMPACT_REPLICA_H_

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "check/checkable.h"
#include "core/arena.h"
#include "core/point_entry.h"
#include "geom/box.h"
#include "geom/point.h"
#include "obs/query_obs.h"
#include "replica/replica_format.h"
#include "simd/simd.h"
#include "storage/buffer_pool.h"
#include "storage/page_header.h"

namespace boxagg {

template <class V>
class CompactReplica {
 public:
  static_assert(std::is_trivially_copyable_v<V> && sizeof(V) == 8,
                "replica value strips assume trivially copyable 8-byte V");
  using Entry = PointEntry<V>;

  CompactReplica(BufferPool* pool, int dims, PageId root = kInvalidPageId)
      : pool_(pool), dims_(dims), root_(root) {
    assert(dims_ >= 1 && dims_ <= kMaxDims);
  }

  [[nodiscard]] PageId root() const { return root_; }
  [[nodiscard]] bool empty() const { return root_ == kInvalidPageId; }
  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] bool is_open() const { return cache_ != nullptr; }

  /// Loads the header, meta chain, directory and dictionaries. Call once
  /// before concurrent querying; repeat calls are no-ops.
  Status Open() {
    if (cache_) return Status::OK();
    auto c = std::make_shared<Cache>();
    if (root_ == kInvalidPageId) {
      cache_ = std::move(c);  // empty replica: every sum is V{}
      return Status::OK();
    }
    uint64_t data_page_count = 0, meta_page_count = 0;
    uint64_t key_dict_count = 0, val_dict_count = 0;
    PageId first_meta = kInvalidPageId;
    {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->Fetch(root_, &g));
      const Page* p = g.page();
      if (p->ReadAt<uint16_t>(replica::kHdrType) != replica::kHeaderPageType) {
        return CorruptionAt(root_, "compact-replica: not a replica header");
      }
      if (p->ReadAt<uint16_t>(replica::kHdrVersion) !=
          replica::kFormatVersion) {
        return CorruptionAt(root_, "compact-replica: unknown format version");
      }
      if (Crc32c(p->data(), replica::kHdrCrc) !=
          p->ReadAt<uint32_t>(replica::kHdrCrc)) {
        return CorruptionAt(root_, "compact-replica: header crc mismatch");
      }
      if (p->ReadAt<uint32_t>(replica::kHdrDims) !=
          static_cast<uint32_t>(dims_)) {
        return CorruptionAt(root_, "compact-replica: dims mismatch");
      }
      if (p->ReadAt<uint32_t>(replica::kHdrValueSize) != sizeof(V)) {
        return CorruptionAt(root_, "compact-replica: value size mismatch");
      }
      c->node_count = p->ReadAt<uint64_t>(replica::kHdrNodeCount);
      c->entry_count = p->ReadAt<uint64_t>(replica::kHdrEntryCount);
      c->data_bytes = p->ReadAt<uint64_t>(replica::kHdrDataBytes);
      data_page_count = p->ReadAt<uint64_t>(replica::kHdrDataPageCount);
      meta_page_count = p->ReadAt<uint64_t>(replica::kHdrMetaPageCount);
      key_dict_count = p->ReadAt<uint64_t>(replica::kHdrKeyDictCount);
      val_dict_count = p->ReadAt<uint64_t>(replica::kHdrValDictCount);
      first_meta = p->ReadAt<uint64_t>(replica::kHdrFirstMeta);
    }
    std::vector<uint8_t> meta;
    meta.reserve((data_page_count + c->node_count + key_dict_count +
                  val_dict_count) *
                 sizeof(uint64_t));
    for (PageId pid = first_meta; pid != kInvalidPageId;) {
      if (c->meta_pages.size() >= meta_page_count) {
        return CorruptionAt(pid, "compact-replica: meta chain too long");
      }
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->Fetch(pid, &g));
      const Page* p = g.page();
      if (p->ReadAt<uint16_t>(0) != replica::kMetaPageType) {
        return CorruptionAt(pid, "compact-replica: bad meta page type");
      }
      const uint32_t len = p->ReadAt<uint32_t>(replica::kMetaPayloadLen);
      if (replica::kMetaHeaderBytes + len > p->size()) {
        return CorruptionAt(pid, "compact-replica: meta payload overruns");
      }
      if (Crc32c(p->data() + replica::kMetaHeaderBytes, len) !=
          p->ReadAt<uint32_t>(replica::kMetaCrc)) {
        return CorruptionAt(pid, "compact-replica: meta crc mismatch");
      }
      const PageId next = p->ReadAt<uint64_t>(replica::kMetaNext);
      if (next != kInvalidPageId) pool_->PrefetchHint(next);
      meta.insert(meta.end(), p->data() + replica::kMetaHeaderBytes,
                  p->data() + replica::kMetaHeaderBytes + len);
      c->meta_pages.push_back(pid);
      pid = next;
    }
    if (c->meta_pages.size() != meta_page_count) {
      return CorruptionAt(root_, "compact-replica: meta chain truncated");
    }
    const uint64_t expected = (data_page_count + c->node_count +
                               key_dict_count + val_dict_count) *
                              sizeof(uint64_t);
    if (meta.size() != expected) {
      return CorruptionAt(root_, "compact-replica: meta payload size drift");
    }
    const uint8_t* m = meta.data();
    c->data_pages.resize(data_page_count);
    std::memcpy(c->data_pages.data(), m, data_page_count * 8);
    m += data_page_count * 8;
    c->dir.resize(c->node_count);
    std::memcpy(c->dir.data(), m, c->node_count * 8);
    m += c->node_count * 8;
    c->key_dict.resize(key_dict_count);
    for (uint64_t i = 0; i < key_dict_count; ++i) {
      uint64_t mapped;
      std::memcpy(&mapped, m + i * 8, 8);
      c->key_dict[i] = replica::UnmapDouble(mapped);
    }
    m += key_dict_count * 8;
    c->val_dict.resize(val_dict_count);
    for (uint64_t i = 0; i < val_dict_count; ++i) {
      uint64_t mapped;
      std::memcpy(&mapped, m + i * 8, 8);
      c->val_dict[i] = replica::UnmapOrderedBits(mapped);
    }
    for (const uint64_t de : c->dir) {
      if ((de >> 32) >= data_page_count) {
        return CorruptionAt(root_, "compact-replica: directory page index "
                                   "out of range");
      }
    }
    cache_ = std::move(c);
    return Status::OK();
  }

  // Immutable backend: the BoxSumIndex mutation entry points are refused —
  // a stale replica is rebuilt from the writer tree, never patched.
  Status Insert(const Point&, const V&) {
    return Status::InvalidArgument(
        "CompactReplica is immutable; rebuild it with ReplicaBuilder");
  }
  Status BulkLoad(std::vector<Entry>) {
    return Status::InvalidArgument(
        "CompactReplica is immutable; rebuild it with ReplicaBuilder");
  }

  // LINT:hot-path — replica descent: no heap allocation past warm-up (lint.sh)
  /// Total value over points dominated by `q`; mirrors
  /// PackedBaTree::DominanceSum (and AggBTree's when dims == 1) addition
  /// for addition, so results are byte-identical to the source tree.
  Status DominanceSum(const Point& query, V* out,
                      unsigned obs_level = 0) const {
    *out = V{};
    BOXAGG_RETURN_NOT_OK(EnsureOpen());
    const Cache& c = *cache_;
    if (root_ == kInvalidPageId || c.node_count == 0) return Status::OK();
    Point q = query;
    for (int d = 0; d < dims_; ++d) {
      q[d] = std::min(q[d], std::numeric_limits<double>::max());
    }
    return SumRec(c, 0, q, dims_, out, obs_level);
  }

  /// Batched dominance sums, bit-identical to `count` independent calls —
  /// the same grouping discipline as the live trees (first containing
  /// record wins, spilled borders before descents, prefetch hints between
  /// groups), so count == 1 reproduces the sequential fetch sequence.
  Status DominanceSumBatch(const Point* queries, size_t count, V* outs,
                           unsigned obs_level = 0) const {
    for (size_t i = 0; i < count; ++i) outs[i] = V{};
    BOXAGG_RETURN_NOT_OK(EnsureOpen());
    const Cache& c = *cache_;
    if (root_ == kInvalidPageId || c.node_count == 0 || count == 0) {
      return Status::OK();
    }
    return SortedBatch(c, 0, queries, count, outs, dims_, obs_level);
  }
  // LINT:hot-path-end

  /// Header + meta chain + data pages.
  Status PageCount(uint64_t* out) const {
    *out = 0;
    if (root_ == kInvalidPageId) return Status::OK();
    BOXAGG_RETURN_NOT_OK(EnsureOpen());
    *out = 1 + cache_->meta_pages.size() + cache_->data_pages.size();
    return Status::OK();
  }

  Status Destroy() {
    if (root_ == kInvalidPageId) return Status::OK();
    BOXAGG_RETURN_NOT_OK(EnsureOpen());
    for (PageId pid : cache_->data_pages) {
      BOXAGG_RETURN_NOT_OK(pool_->Delete(pid));
    }
    for (PageId pid : cache_->meta_pages) {
      BOXAGG_RETURN_NOT_OK(pool_->Delete(pid));
    }
    BOXAGG_RETURN_NOT_OK(pool_->Delete(root_));
    cache_.reset();
    root_ = kInvalidPageId;
    return Status::OK();
  }

  /// Deep structural audit (fresh from the pages, not the cached state):
  /// header/meta/data crc envelopes, directory and dictionary sanity, a
  /// full strict re-decode of every node, breadth-first reachability of
  /// exactly node_count ordinals, aggregate subtree identities (within
  /// kAggDriftTolerance — replica sums are the source's, re-derived sums
  /// are a different addition order), EXACT equality of the re-counted
  /// entries against the header's entry_count, and the self-oracle.
  Status CheckConsistency(CheckContext* ctx) const {
    if (root_ == kInvalidPageId) return Status::OK();
    BOXAGG_RETURN_NOT_OK(ctx->Visit(root_, "compact-replica"));
    Cache c;
    uint64_t data_page_count = 0, meta_page_count = 0;
    uint64_t key_dict_count = 0, val_dict_count = 0;
    PageId first_meta = kInvalidPageId;
    {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->Fetch(root_, &g));
      const Page* p = g.page();
      if (p->ReadAt<uint16_t>(replica::kHdrType) != replica::kHeaderPageType) {
        return CorruptionAt(root_, "compact-replica: bad header page type " +
                                       std::to_string(p->ReadAt<uint16_t>(0)));
      }
      if (p->ReadAt<uint16_t>(replica::kHdrVersion) !=
          replica::kFormatVersion) {
        return CorruptionAt(root_, "compact-replica: unknown format version");
      }
      if (Crc32c(p->data(), replica::kHdrCrc) !=
          p->ReadAt<uint32_t>(replica::kHdrCrc)) {
        return CorruptionAt(root_, "compact-replica: header crc mismatch");
      }
      if (p->ReadAt<uint32_t>(replica::kHdrDims) !=
          static_cast<uint32_t>(dims_)) {
        return CorruptionAt(root_, "compact-replica: dims mismatch");
      }
      if (p->ReadAt<uint32_t>(replica::kHdrValueSize) != sizeof(V)) {
        return CorruptionAt(root_, "compact-replica: value size mismatch");
      }
      if (p->ReadAt<uint32_t>(replica::kHdrLevelCount) >
          replica::kHdrLevelSlots) {
        return CorruptionAt(root_, "compact-replica: level count out of "
                                   "range");
      }
      c.node_count = p->ReadAt<uint64_t>(replica::kHdrNodeCount);
      c.entry_count = p->ReadAt<uint64_t>(replica::kHdrEntryCount);
      c.data_bytes = p->ReadAt<uint64_t>(replica::kHdrDataBytes);
      data_page_count = p->ReadAt<uint64_t>(replica::kHdrDataPageCount);
      meta_page_count = p->ReadAt<uint64_t>(replica::kHdrMetaPageCount);
      key_dict_count = p->ReadAt<uint64_t>(replica::kHdrKeyDictCount);
      val_dict_count = p->ReadAt<uint64_t>(replica::kHdrValDictCount);
      first_meta = p->ReadAt<uint64_t>(replica::kHdrFirstMeta);
    }
    // Meta chain: envelope checks + payload reassembly.
    std::vector<uint8_t> meta;
    for (PageId pid = first_meta; pid != kInvalidPageId;) {
      if (c.meta_pages.size() >= meta_page_count) {
        return CorruptionAt(pid, "compact-replica: meta chain longer than "
                                 "the header's count");
      }
      BOXAGG_RETURN_NOT_OK(ctx->Visit(pid, "compact-replica"));
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->Fetch(pid, &g));
      const Page* p = g.page();
      if (p->ReadAt<uint16_t>(0) != replica::kMetaPageType) {
        return CorruptionAt(pid, "compact-replica: bad meta page type");
      }
      const uint32_t len = p->ReadAt<uint32_t>(replica::kMetaPayloadLen);
      if (replica::kMetaHeaderBytes + len > p->size()) {
        return CorruptionAt(pid, "compact-replica: meta payload overruns "
                                 "the page");
      }
      if (Crc32c(p->data() + replica::kMetaHeaderBytes, len) !=
          p->ReadAt<uint32_t>(replica::kMetaCrc)) {
        return CorruptionAt(pid, "compact-replica: meta crc mismatch");
      }
      meta.insert(meta.end(), p->data() + replica::kMetaHeaderBytes,
                  p->data() + replica::kMetaHeaderBytes + len);
      c.meta_pages.push_back(pid);
      pid = p->ReadAt<uint64_t>(replica::kMetaNext);
    }
    if (c.meta_pages.size() != meta_page_count) {
      return CorruptionAt(root_, "compact-replica: meta chain truncated");
    }
    if (meta.size() != (data_page_count + c.node_count + key_dict_count +
                        val_dict_count) *
                           sizeof(uint64_t)) {
      return CorruptionAt(root_, "compact-replica: meta payload size drift");
    }
    const uint8_t* m = meta.data();
    c.data_pages.resize(data_page_count);
    std::memcpy(c.data_pages.data(), m, data_page_count * 8);
    m += data_page_count * 8;
    c.dir.resize(c.node_count);
    std::memcpy(c.dir.data(), m, c.node_count * 8);
    m += c.node_count * 8;
    // Dictionaries must be strictly increasing in the order-mapped domain
    // (the builder emits them sorted + deduplicated; the strip encoder's
    // binary search depends on it).
    c.key_dict.resize(key_dict_count);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < key_dict_count; ++i) {
      uint64_t mapped;
      std::memcpy(&mapped, m + i * 8, 8);
      if (i > 0 && mapped <= prev) {
        return CorruptionAt(root_, "compact-replica: key dictionary not "
                                   "strictly sorted");
      }
      prev = mapped;
      c.key_dict[i] = replica::UnmapDouble(mapped);
    }
    m += key_dict_count * 8;
    c.val_dict.resize(val_dict_count);
    for (uint64_t i = 0; i < val_dict_count; ++i) {
      uint64_t mapped;
      std::memcpy(&mapped, m + i * 8, 8);
      if (i > 0 && mapped <= prev) {
        return CorruptionAt(root_, "compact-replica: value dictionary not "
                                   "strictly sorted");
      }
      prev = mapped;
      c.val_dict[i] = replica::UnmapOrderedBits(mapped);
    }
    // Data pages: visit + envelope-check every one (FetchMulti in chunks —
    // the physical sweep fsck wants), and pin down per-page node counts.
    std::vector<uint32_t> nodes_in_page(data_page_count, 0);
    for (uint64_t i = 0; i < c.node_count; ++i) {
      const uint64_t de = c.dir[i];
      if ((de >> 32) >= data_page_count) {
        return CorruptionAt(root_, "compact-replica: directory page index "
                                   "out of range");
      }
      ++nodes_in_page[de >> 32];
    }
    constexpr size_t kSweepChunk = 32;
    for (size_t base = 0; base < c.data_pages.size(); base += kSweepChunk) {
      const size_t n = std::min(kSweepChunk, c.data_pages.size() - base);
      std::vector<PageGuard> guards;
      BOXAGG_RETURN_NOT_OK(
          pool_->FetchMulti(c.data_pages.data() + base, n, &guards));
      for (size_t k = 0; k < n; ++k) {
        const PageId pid = c.data_pages[base + k];
        BOXAGG_RETURN_NOT_OK(ctx->Visit(pid, "compact-replica"));
        const Page* p = guards[k].page();
        if (p->ReadAt<uint16_t>(0) != replica::kDataPageType) {
          return CorruptionAt(pid, "compact-replica: bad data page type");
        }
        const uint32_t len = p->ReadAt<uint32_t>(replica::kDataPayloadLen);
        if (replica::kDataHeaderBytes + len > p->size()) {
          return CorruptionAt(pid, "compact-replica: data payload overruns "
                                   "the page");
        }
        if (Crc32c(p->data() + replica::kDataHeaderBytes, len) !=
            p->ReadAt<uint32_t>(replica::kDataCrc)) {
          return CorruptionAt(pid, "compact-replica: data crc mismatch");
        }
        if (p->ReadAt<uint16_t>(replica::kDataNodeCount) !=
            nodes_in_page[base + k]) {
          return CorruptionAt(pid, "compact-replica: node count disagrees "
                                   "with the directory");
        }
        for (uint64_t i = 0; i < c.node_count; ++i) {
          if ((c.dir[i] >> 32) != base + k) continue;
          const uint32_t off = static_cast<uint32_t>(c.dir[i]);
          if (off < replica::kDataHeaderBytes ||
              off >= replica::kDataHeaderBytes + len) {
            return CorruptionAt(pid, "compact-replica: directory offset "
                                     "outside the payload");
          }
        }
      }
    }
    // Structural walk: strict re-decode from ordinal 0, each ordinal
    // reached exactly once, subtree aggregates re-derived, entries counted.
    if (c.node_count == 0) {
      if (c.entry_count != 0) {
        return CorruptionAt(root_, "compact-replica: empty replica with a "
                                   "non-zero entry count");
      }
      return Status::OK();
    }
    std::vector<uint8_t> reached(c.node_count, 0);
    uint64_t entries = 0;
    std::vector<Entry> pts;
    WalkInfo info;
    BOXAGG_RETURN_NOT_OK(
        CheckNodeRec(c, 0, dims_, &reached, &entries, &pts, &info));
    for (uint64_t i = 0; i < c.node_count; ++i) {
      if (!reached[i]) {
        return CorruptionAt(root_, "compact-replica: ordinal " +
                                       std::to_string(i) +
                                       " unreachable from the root");
      }
    }
    if (entries != c.entry_count) {
      return CorruptionAt(
          root_, "compact-replica: encoded entries (" +
                     std::to_string(entries) + ") != source root count (" +
                     std::to_string(c.entry_count) + ")");
    }
    if (ctx->check_oracle) {
      BOXAGG_RETURN_NOT_OK(EnsureOpen());
      BOXAGG_RETURN_NOT_OK(SelfOracle(pts));
    }
    return Status::OK();
  }

 private:
  struct Cache {
    uint64_t node_count = 0;
    uint64_t entry_count = 0;
    uint64_t data_bytes = 0;
    std::vector<PageId> meta_pages;
    std::vector<PageId> data_pages;
    std::vector<uint64_t> dir;  // ordinal -> (page_index << 32 | offset)
    std::vector<double> key_dict;
    std::vector<uint64_t> val_dict;  // raw V bit patterns
  };

  struct SpillProbe {
    int b;
    uint64_t ord;
  };

  Status EnsureOpen() const {
    if (cache_) return Status::OK();
    return const_cast<CompactReplica*>(this)->Open();
  }

  // LINT:hot-path — replica descent: no heap allocation past warm-up (lint.sh)
  Status FetchNode(const Cache& c, uint64_t ord, PageGuard* g,
                   const uint8_t** node) const {
    const uint64_t de = c.dir[ord];
    BOXAGG_RETURN_NOT_OK(pool_->Fetch(c.data_pages[de >> 32], g));
    *node = g->page()->data() + static_cast<uint32_t>(de);
    return Status::OK();
  }

  PageId PageOf(const Cache& c, uint64_t ord) const {
    return c.data_pages[c.dir[ord] >> 32];
  }

  /// Decodes `dims` per-dimension coordinate strips at *p into pts[0..n).
  void DecodePointColumns(const Cache& c, const uint8_t** p, uint32_t n,
                          int dims, uint64_t* tok, Point* pts) const {
    for (int d = 0; d < dims; ++d) {
      const replica::StripRef s = replica::ParseStrip(p, n);
      replica::DecodeStripU64(s, n, tok);
      if ((s.header & replica::kStripDictBit) != 0) {
        for (uint32_t i = 0; i < n; ++i) pts[i][d] = c.key_dict[tok[i]];
      } else {
        for (uint32_t i = 0; i < n; ++i) {
          pts[i][d] = replica::UnmapDouble(tok[i]);
        }
      }
    }
  }

  /// Decodes the first `take` values of the strip at *p (stored count n).
  void DecodeValueStrip(const Cache& c, const uint8_t** p, uint32_t n,
                        uint32_t take, uint64_t* tok, V* out) const {
    const replica::StripRef s = replica::ParseStrip(p, n);
    replica::DecodeStripU64(s, take, tok);
    if ((s.header & replica::kStripDictBit) != 0) {
      for (uint32_t i = 0; i < take; ++i) {
        const uint64_t bits = c.val_dict[tok[i]];
        std::memcpy(&out[i], &bits, sizeof(V));
      }
    } else {
      for (uint32_t i = 0; i < take; ++i) {
        const uint64_t bits = replica::UnmapOrderedBits(tok[i]);
        std::memcpy(&out[i], &bits, sizeof(V));
      }
    }
  }

  /// Advances *p past one record's border sections without decoding.
  static void SkipBorderSection(const uint8_t** p, int dims) {
    for (int b = 0; b < dims; ++b) {
      const uint8_t tag = *(*p)++;
      if (tag == replica::kBorderEmpty) continue;
      if (tag == replica::kBorderInline) {
        const uint32_t cnt =
            static_cast<uint32_t>(replica::ReadVarint(p));
        for (int d = 0; d < dims - 1; ++d) replica::SkipStrip(p, cnt);
        replica::SkipStrip(p, cnt);
      } else {
        replica::ReadVarint(p);
      }
    }
  }

  /// Sequential descent; mirrors PackedBaTree::DominanceSum's per-level
  /// pin/arena discipline, and AggBTree::DominanceSum for the 1-d node
  /// kinds (the main tree when dims_ == 1, spilled borders at depth 1).
  Status SumRec(const Cache& c, uint64_t ord, const Point& q, int dims,
                V* out, unsigned obs_level) const {
    for (unsigned level = obs_level;; ++level) {
      core::ArenaScope scope(core::ScratchArena());
      core::ArenaVector<SpillProbe> tree_borders;
      uint64_t next = 0;
      {
        PageGuard g;
        const uint8_t* p = nullptr;
        BOXAGG_RETURN_NOT_OK(FetchNode(c, ord, &g, &p));
        obs::NoteNodeVisit(level);
        const uint8_t kind = *p++;
        const uint32_t n = static_cast<uint32_t>(replica::ReadVarint(&p));
        // Drained leaves (possible after forced splits in the source tree)
        // are encoded as a bare kind + count; nothing follows.
        if (n == 0) return Status::OK();
        if (kind == replica::kNodeAggLeaf) {
          core::ArenaVector<uint64_t> tok(n);
          core::ArenaVector<double> keys(n);
          const replica::StripRef ks = replica::ParseStrip(&p, n);
          replica::DecodeStripU64(ks, n, tok.data());
          if ((ks.header & replica::kStripDictBit) != 0) {
            for (uint32_t i = 0; i < n; ++i) keys[i] = c.key_dict[tok[i]];
          } else {
            for (uint32_t i = 0; i < n; ++i) {
              keys[i] = replica::UnmapDouble(tok[i]);
            }
          }
          const uint32_t cut = simd::FirstGreater(keys.data(), n, q[0]);
          core::ArenaVector<V> vals(cut);
          DecodeValueStrip(c, &p, n, cut, tok.data(), vals.data());
          for (uint32_t i = 0; i < cut; ++i) *out += vals[i];
          return Status::OK();
        }
        if (kind == replica::kNodeAggInternal) {
          const uint64_t first_child = replica::ReadVarint(&p);
          core::ArenaVector<uint64_t> tok(n);
          core::ArenaVector<double> lowkeys(n);
          const replica::StripRef ks = replica::ParseStrip(&p, n);
          replica::DecodeStripU64(ks, n, tok.data());
          if ((ks.header & replica::kStripDictBit) != 0) {
            for (uint32_t i = 0; i < n; ++i) {
              lowkeys[i] = c.key_dict[tok[i]];
            }
          } else {
            for (uint32_t i = 0; i < n; ++i) {
              lowkeys[i] = replica::UnmapDouble(tok[i]);
            }
          }
          const uint32_t route =
              simd::FirstGreater(lowkeys.data() + 1, n - 1, q[0]);
          core::ArenaVector<V> sums(route);
          DecodeValueStrip(c, &p, n, route, tok.data(), sums.data());
          for (uint32_t i = 0; i < route; ++i) *out += sums[i];
          next = first_child + route;
        } else if (kind == replica::kNodeBaLeaf) {
          core::ArenaVector<uint64_t> tok(n);
          core::ArenaVector<Point> pts(n);
          DecodePointColumns(c, &p, n, dims, tok.data(), pts.data());
          core::ArenaVector<V> vals(n);
          DecodeValueStrip(c, &p, n, n, tok.data(), vals.data());
          for (uint32_t i = 0; i < n; ++i) {
            if (simd::Dominates(q, pts[i], dims)) *out += vals[i];
          }
          return Status::OK();
        } else {  // kNodeBaInternal
          const uint64_t first_child = replica::ReadVarint(&p);
          core::ArenaVector<uint64_t> tok(n);
          core::ArenaVector<Box> boxes(n);
          for (uint32_t i = 0; i < n; ++i) boxes[i] = Box{};
          DecodeBoxColumns(c, &p, n, dims, tok.data(), boxes.data());
          core::ArenaVector<V> subs(n);
          DecodeValueStrip(c, &p, n, n, tok.data(), subs.data());
          bool found = false;
          for (uint32_t i = 0; i < n && !found; ++i) {
            if (!simd::ContainsHalfOpen(boxes[i], q, dims)) {
              SkipBorderSection(&p, dims);
              continue;
            }
            found = true;
            *out += subs[i];
            for (int b = 0; b < dims; ++b) {
              const uint8_t tag = *p++;
              if (tag == replica::kBorderEmpty) continue;
              Point projected = q.DropDim(b, dims);
              if (tag == replica::kBorderInline) {
                const uint32_t cnt =
                    static_cast<uint32_t>(replica::ReadVarint(&p));
                core::ArenaVector<uint64_t> btok(cnt);
                core::ArenaVector<Point> bpts(cnt);
                DecodePointColumns(c, &p, cnt, dims - 1, btok.data(),
                                   bpts.data());
                core::ArenaVector<V> bvals(cnt);
                DecodeValueStrip(c, &p, cnt, cnt, btok.data(), bvals.data());
                for (uint32_t k = 0; k < cnt; ++k) {
                  if (simd::Dominates(projected, bpts[k], dims - 1)) {
                    *out += bvals[k];
                  }
                }
              } else {
                tree_borders.push_back(
                    SpillProbe{b, replica::ReadVarint(&p)});
              }
            }
            next = first_child + i;
          }
          if (!found) {
            return Status::Corruption(
                "query point not covered by any record");
          }
        }
      }
      for (const SpillProbe& tb : tree_borders) {
        obs::NoteBorderProbes(1);
        V part{};
        BOXAGG_RETURN_NOT_OK(SumRec(c, tb.ord, q.DropDim(tb.b, dims),
                                    dims - 1, &part, level + 1));
        *out += part;
      }
      ord = next;
    }
  }

  /// Zeroes outs, clamps, sorts probes lexicographically (tie: original
  /// index) and runs the batched descent — the entry discipline of both
  /// PackedBaTree::DominanceSumBatch (lex sort over dims) and
  /// AggBTree::DominanceSumBatch (key sort == lex sort at dims == 1), so
  /// it serves as the top-level batch AND the spilled-border sub-batch.
  Status SortedBatch(const Cache& c, uint64_t ord, const Point* queries,
                     size_t count, V* outs, int dims,
                     unsigned obs_level) const {
    core::ArenaScope scope(core::ScratchArena());
    core::ArenaVector<Point> qs(queries, queries + count);
    for (auto& q : qs) {
      for (int d = 0; d < dims; ++d) {
        q[d] = std::min(q[d], std::numeric_limits<double>::max());
      }
    }
    core::ArenaVector<uint32_t> order(count);
    for (size_t i = 0; i < count; ++i) order[i] = static_cast<uint32_t>(i);
    const core::ArenaVector<Point>& q_ref = qs;
    std::sort(order.begin(), order.end(),
              [dims, &q_ref](uint32_t a, uint32_t b) {
                if (LexLess(q_ref[a], q_ref[b], dims)) return true;
                if (LexLess(q_ref[b], q_ref[a], dims)) return false;
                return a < b;
              });
    return BatchRec(c, ord, order.data(), count, qs.data(), outs, dims,
                    obs_level);
  }

  /// One node of the batched descent; kind-dispatched mirror of
  /// PackedBaTree::DominanceBatchRec and AggBTree::DominanceBatchRec.
  Status BatchRec(const Cache& c, uint64_t ord, const uint32_t* idx,
                  size_t m, const Point* qs, V* outs, int dims,
                  unsigned obs_level) const {
    struct Spill {
      int b;
      uint64_t ord;
    };
    struct Group {
      uint64_t child;
      core::ArenaVector<uint32_t> members;  // original probe indices
      core::ArenaVector<Spill> spills;
    };
    struct Run {  // agg-internal groups: contiguous slices of idx
      uint64_t child;
      size_t begin;
      size_t end;
    };
    core::ArenaScope scope(core::ScratchArena());
    core::ArenaVector<Group> groups;
    core::ArenaVector<Run> runs;
    {
      PageGuard g;
      const uint8_t* p = nullptr;
      BOXAGG_RETURN_NOT_OK(FetchNode(c, ord, &g, &p));
      obs::NoteNodeVisit(obs_level);
      if (m > 1) pool_->NoteProbeFetchesSaved(m - 1);
      const uint8_t kind = *p++;
      const uint32_t n = static_cast<uint32_t>(replica::ReadVarint(&p));
      if (n == 0) return Status::OK();  // drained leaf: nothing follows
      if (kind == replica::kNodeAggLeaf) {
        core::ArenaVector<uint64_t> tok(n);
        core::ArenaVector<double> keys(n);
        const replica::StripRef ks = replica::ParseStrip(&p, n);
        replica::DecodeStripU64(ks, n, tok.data());
        if ((ks.header & replica::kStripDictBit) != 0) {
          for (uint32_t i = 0; i < n; ++i) keys[i] = c.key_dict[tok[i]];
        } else {
          for (uint32_t i = 0; i < n; ++i) {
            keys[i] = replica::UnmapDouble(tok[i]);
          }
        }
        core::ArenaVector<V> vals(n);
        DecodeValueStrip(c, &p, n, n, tok.data(), vals.data());
        for (size_t j = 0; j < m; ++j) {
          const uint32_t cut =
              simd::FirstGreater(keys.data(), n, qs[idx[j]][0]);
          V* out = &outs[idx[j]];
          for (uint32_t i = 0; i < cut; ++i) *out += vals[i];
        }
        return Status::OK();
      }
      if (kind == replica::kNodeAggInternal) {
        const uint64_t first_child = replica::ReadVarint(&p);
        core::ArenaVector<uint64_t> tok(n);
        core::ArenaVector<double> lowkeys(n);
        const replica::StripRef ks = replica::ParseStrip(&p, n);
        replica::DecodeStripU64(ks, n, tok.data());
        if ((ks.header & replica::kStripDictBit) != 0) {
          for (uint32_t i = 0; i < n; ++i) lowkeys[i] = c.key_dict[tok[i]];
        } else {
          for (uint32_t i = 0; i < n; ++i) {
            lowkeys[i] = replica::UnmapDouble(tok[i]);
          }
        }
        core::ArenaVector<V> sums(n);
        DecodeValueStrip(c, &p, n, n, tok.data(), sums.data());
        size_t j = 0;
        while (j < m) {
          const uint32_t route =
              simd::FirstGreater(lowkeys.data() + 1, n - 1, qs[idx[j]][0]);
          size_t k = j + 1;
          while (k < m &&
                 simd::FirstGreater(lowkeys.data() + 1, n - 1,
                                    qs[idx[k]][0]) == route) {
            ++k;
          }
          for (size_t t = j; t < k; ++t) {
            V* out = &outs[idx[t]];
            for (uint32_t i = 0; i < route; ++i) *out += sums[i];
          }
          runs.push_back(Run{first_child + route, j, k});
          j = k;
        }
      } else if (kind == replica::kNodeBaLeaf) {
        core::ArenaVector<uint64_t> tok(n);
        core::ArenaVector<Point> pts(n);
        DecodePointColumns(c, &p, n, dims, tok.data(), pts.data());
        core::ArenaVector<V> vals(n);
        DecodeValueStrip(c, &p, n, n, tok.data(), vals.data());
        for (size_t j = 0; j < m; ++j) {
          const Point& q = qs[idx[j]];
          V* out = &outs[idx[j]];
          for (uint32_t i = 0; i < n; ++i) {
            if (simd::Dominates(q, pts[i], dims)) *out += vals[i];
          }
        }
        return Status::OK();
      } else {  // kNodeBaInternal
        const uint64_t first_child = replica::ReadVarint(&p);
        core::ArenaVector<uint64_t> tok(n);
        core::ArenaVector<Box> boxes(n);
        for (uint32_t i = 0; i < n; ++i) boxes[i] = Box{};
        DecodeBoxColumns(c, &p, n, dims, tok.data(), boxes.data());
        core::ArenaVector<V> subs(n);
        DecodeValueStrip(c, &p, n, n, tok.data(), subs.data());
        core::ArenaVector<uint8_t> taken(m, 0);
        size_t assigned = 0;
        for (uint32_t i = 0; i < n && assigned < m; ++i) {
          core::ArenaVector<uint32_t> members;
          for (size_t j = 0; j < m; ++j) {
            if (taken[j]) continue;
            if (simd::ContainsHalfOpen(boxes[i], qs[idx[j]], dims)) {
              taken[j] = 1;
              ++assigned;
              members.push_back(idx[j]);
            }
          }
          if (members.empty()) {
            SkipBorderSection(&p, dims);
            continue;
          }
          for (uint32_t probe : members) outs[probe] += subs[i];
          core::ArenaVector<Spill> spills;
          for (int b = 0; b < dims; ++b) {
            const uint8_t tag = *p++;
            if (tag == replica::kBorderEmpty) continue;
            if (tag == replica::kBorderInline) {
              const uint32_t cnt =
                  static_cast<uint32_t>(replica::ReadVarint(&p));
              core::ArenaVector<uint64_t> btok(cnt);
              core::ArenaVector<Point> bpts(cnt);
              DecodePointColumns(c, &p, cnt, dims - 1, btok.data(),
                                 bpts.data());
              core::ArenaVector<V> bvals(cnt);
              DecodeValueStrip(c, &p, cnt, cnt, btok.data(), bvals.data());
              for (uint32_t probe : members) {
                Point projected = qs[probe].DropDim(b, dims);
                for (uint32_t k = 0; k < cnt; ++k) {
                  if (simd::Dominates(projected, bpts[k], dims - 1)) {
                    outs[probe] += bvals[k];
                  }
                }
              }
            } else {
              spills.push_back(Spill{b, replica::ReadVarint(&p)});
            }
          }
          groups.push_back(Group{first_child + i, std::move(members),
                                 std::move(spills)});
        }
        if (assigned != m) {
          return Status::Corruption(
              "query point not covered by any record");
        }
      }
    }
    if (!runs.empty()) {
      for (size_t gi = 0; gi < runs.size(); ++gi) {
        if (gi + 1 < runs.size()) {
          pool_->PrefetchHint(PageOf(c, runs[gi + 1].child));
        }
        const Run& r = runs[gi];
        BOXAGG_RETURN_NOT_OK(BatchRec(c, r.child, idx + r.begin,
                                      r.end - r.begin, qs, outs, dims,
                                      obs_level + 1));
      }
      return Status::OK();
    }
    // Spilled borders of this node before any descent, like the live
    // tree's per-level tree_borders pass; each sub-batch re-clamps and
    // re-sorts its projected probes exactly as a fresh
    // PackedBaTree::DominanceSumBatch over the spilled root would.
    core::ArenaVector<Point> pts;
    core::ArenaVector<V> parts;
    for (const Group& gr : groups) {
      const size_t gs = gr.members.size();
      for (const Spill& sp : gr.spills) {
        pts.resize(gs);
        parts.resize(gs);
        for (size_t t = 0; t < gs; ++t) {
          pts[t] = qs[gr.members[t]].DropDim(sp.b, dims);
        }
        for (size_t t = 0; t < gs; ++t) parts[t] = V{};
        obs::NoteBorderProbes(gs);
        BOXAGG_RETURN_NOT_OK(SortedBatch(c, sp.ord, pts.data(), gs,
                                         parts.data(), dims - 1,
                                         obs_level + 1));
        for (size_t t = 0; t < gs; ++t) outs[gr.members[t]] += parts[t];
      }
    }
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      if (gi + 1 < groups.size()) {
        pool_->PrefetchHint(PageOf(c, groups[gi + 1].child));
      }
      const Group& gr = groups[gi];
      BOXAGG_RETURN_NOT_OK(BatchRec(c, gr.child, gr.members.data(),
                                    gr.members.size(), qs, outs, dims,
                                    obs_level + 1));
    }
    return Status::OK();
  }

  /// Decodes 2*dims box-corner strips (lo columns then hi columns).
  void DecodeBoxColumns(const Cache& c, const uint8_t** p, uint32_t n,
                        int dims, uint64_t* tok, Box* boxes) const {
    for (int side = 0; side < 2; ++side) {
      for (int d = 0; d < dims; ++d) {
        const replica::StripRef s = replica::ParseStrip(p, n);
        replica::DecodeStripU64(s, n, tok);
        if ((s.header & replica::kStripDictBit) != 0) {
          for (uint32_t i = 0; i < n; ++i) {
            (side == 0 ? boxes[i].lo : boxes[i].hi)[d] = c.key_dict[tok[i]];
          }
        } else {
          for (uint32_t i = 0; i < n; ++i) {
            (side == 0 ? boxes[i].lo : boxes[i].hi)[d] =
                replica::UnmapDouble(tok[i]);
          }
        }
      }
    }
  }
  // LINT:hot-path-end

  // ---- verification (check path: free to allocate) -------------------------

  struct WalkInfo {
    V total{};
    uint32_t depth = 0;
  };

  Status CheckedVarint(PageId pid, const uint8_t** p, const uint8_t* end,
                       uint64_t* out) const {
    if (*p >= end) {
      return CorruptionAt(pid, "compact-replica: varint overruns the node");
    }
    *out = replica::ReadVarint(p);
    if (*p > end) {
      return CorruptionAt(pid, "compact-replica: varint overruns the node");
    }
    return Status::OK();
  }

  Status CheckedTokens(const Cache& c, PageId pid, const uint8_t** p,
                       const uint8_t* end, uint32_t m, bool key_dict,
                       std::vector<uint64_t>* tok, uint8_t* header) const {
    if (*p + 1 + 8 > end) {
      return CorruptionAt(pid, "compact-replica: strip header overruns");
    }
    const replica::StripRef s = replica::ParseStrip(p, m);
    if ((s.header & replica::kStripWidthMask) > 8) {
      return CorruptionAt(pid, "compact-replica: strip width out of range");
    }
    if (*p > end) {
      return CorruptionAt(pid, "compact-replica: strip payload overruns");
    }
    tok->resize(m);
    replica::DecodeStripU64(s, m, tok->data());
    if ((s.header & replica::kStripDictBit) != 0) {
      const size_t limit =
          key_dict ? c.key_dict.size() : c.val_dict.size();
      for (uint32_t i = 0; i < m; ++i) {
        if ((*tok)[i] >= limit) {
          return CorruptionAt(pid, "compact-replica: dictionary index out "
                                   "of range");
        }
      }
    }
    *header = s.header;
    return Status::OK();
  }

  Status CheckedKeys(const Cache& c, PageId pid, const uint8_t** p,
                     const uint8_t* end, uint32_t m,
                     std::vector<double>* out) const {
    std::vector<uint64_t> tok;
    uint8_t header = 0;
    BOXAGG_RETURN_NOT_OK(
        CheckedTokens(c, pid, p, end, m, /*key_dict=*/true, &tok, &header));
    out->resize(m);
    if ((header & replica::kStripDictBit) != 0) {
      for (uint32_t i = 0; i < m; ++i) (*out)[i] = c.key_dict[tok[i]];
    } else {
      for (uint32_t i = 0; i < m; ++i) {
        (*out)[i] = replica::UnmapDouble(tok[i]);
      }
    }
    return Status::OK();
  }

  Status CheckedValues(const Cache& c, PageId pid, const uint8_t** p,
                       const uint8_t* end, uint32_t m,
                       std::vector<V>* out) const {
    std::vector<uint64_t> tok;
    uint8_t header = 0;
    BOXAGG_RETURN_NOT_OK(
        CheckedTokens(c, pid, p, end, m, /*key_dict=*/false, &tok, &header));
    out->resize(m);
    for (uint32_t i = 0; i < m; ++i) {
      const uint64_t bits = (header & replica::kStripDictBit) != 0
                                ? c.val_dict[tok[i]]
                                : replica::UnmapOrderedBits(tok[i]);
      std::memcpy(&(*out)[i], &bits, sizeof(V));
    }
    return Status::OK();
  }

  /// Strict re-decode of one subtree: kinds match the dimensionality, keys
  /// sorted, aggregates re-derived, entries collected (main branch) or
  /// counted (spilled borders), child/spill ordinals in range and reached
  /// exactly once.
  Status CheckNodeRec(const Cache& c, uint64_t ord, int dims,
                      std::vector<uint8_t>* reached, uint64_t* entries,
                      std::vector<Entry>* out, WalkInfo* info) const {
    if (ord >= c.node_count) {
      return CorruptionAt(root_, "compact-replica: ordinal " +
                                     std::to_string(ord) + " out of range");
    }
    if ((*reached)[ord]) {
      return CorruptionAt(root_, "compact-replica: ordinal " +
                                     std::to_string(ord) +
                                     " reached twice (cycle or shared "
                                     "ownership)");
    }
    (*reached)[ord] = 1;
    const PageId pid = PageOf(c, ord);
    uint8_t kind = 0;
    uint32_t n = 0;
    uint64_t first_child = 0;
    std::vector<double> keys;          // agg kinds
    std::vector<V> vals;               // leaf values / agg sums
    std::vector<std::vector<double>> cols;  // ba kinds, per-dim columns
    std::vector<Box> boxes;
    struct BorderRef {
      int b = 0;
      bool spill = false;
      uint64_t ord = 0;
      std::vector<Point> pts;  // inline entries
      std::vector<V> vals;
    };
    std::vector<std::vector<BorderRef>> rec_borders;
    {
      PageGuard g;
      const uint8_t* p = nullptr;
      BOXAGG_RETURN_NOT_OK(FetchNode(c, ord, &g, &p));
      const uint8_t* end = g.page()->data() + replica::kDataHeaderBytes +
                           g.page()->ReadAt<uint32_t>(
                               replica::kDataPayloadLen);
      if (p >= end) {
        return CorruptionAt(pid, "compact-replica: node offset at or past "
                                 "the payload end");
      }
      kind = *p++;
      uint64_t n64 = 0;
      BOXAGG_RETURN_NOT_OK(CheckedVarint(pid, &p, end, &n64));
      n = static_cast<uint32_t>(n64);
      const bool leaf_kind = kind == replica::kNodeBaLeaf ||
                             kind == replica::kNodeAggLeaf;
      // Leaves may be drained (n == 0, bare kind + count) after forced
      // splits in the source tree; internal nodes never are.
      if ((n == 0 && !leaf_kind) || n > g.page()->size()) {
        return CorruptionAt(pid, "compact-replica: node entry count " +
                                     std::to_string(n64) +
                                     " out of range");
      }
      const bool agg_kind = kind == replica::kNodeAggLeaf ||
                            kind == replica::kNodeAggInternal;
      const bool ba_kind = kind == replica::kNodeBaLeaf ||
                           kind == replica::kNodeBaInternal;
      if (!agg_kind && !ba_kind) {
        return CorruptionAt(pid, "compact-replica: unknown node kind " +
                                     std::to_string(kind));
      }
      if (agg_kind != (dims == 1)) {
        return CorruptionAt(pid, "compact-replica: node kind disagrees "
                                 "with its dimensionality");
      }
      if (n == 0) {
        info->total = V{};
        info->depth = 1;
        return Status::OK();
      }
      if (kind == replica::kNodeAggLeaf) {
        BOXAGG_RETURN_NOT_OK(CheckedKeys(c, pid, &p, end, n, &keys));
        BOXAGG_RETURN_NOT_OK(CheckedValues(c, pid, &p, end, n, &vals));
      } else if (kind == replica::kNodeAggInternal) {
        BOXAGG_RETURN_NOT_OK(CheckedVarint(pid, &p, end, &first_child));
        BOXAGG_RETURN_NOT_OK(CheckedKeys(c, pid, &p, end, n, &keys));
        BOXAGG_RETURN_NOT_OK(CheckedValues(c, pid, &p, end, n, &vals));
      } else if (kind == replica::kNodeBaLeaf) {
        cols.resize(static_cast<size_t>(dims));
        for (int d = 0; d < dims; ++d) {
          BOXAGG_RETURN_NOT_OK(CheckedKeys(c, pid, &p, end, n, &cols[d]));
        }
        BOXAGG_RETURN_NOT_OK(CheckedValues(c, pid, &p, end, n, &vals));
      } else {
        BOXAGG_RETURN_NOT_OK(CheckedVarint(pid, &p, end, &first_child));
        boxes.assign(n, Box{});
        std::vector<double> col;
        for (int side = 0; side < 2; ++side) {
          for (int d = 0; d < dims; ++d) {
            BOXAGG_RETURN_NOT_OK(CheckedKeys(c, pid, &p, end, n, &col));
            for (uint32_t i = 0; i < n; ++i) {
              (side == 0 ? boxes[i].lo : boxes[i].hi)[d] = col[i];
            }
          }
        }
        BOXAGG_RETURN_NOT_OK(CheckedValues(c, pid, &p, end, n, &vals));
        rec_borders.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          for (int b = 0; b < dims; ++b) {
            if (p >= end) {
              return CorruptionAt(pid, "compact-replica: border section "
                                       "overruns the node");
            }
            const uint8_t tag = *p++;
            if (tag == replica::kBorderEmpty) continue;
            BorderRef br;
            br.b = b;
            if (tag == replica::kBorderInline) {
              uint64_t cnt64 = 0;
              BOXAGG_RETURN_NOT_OK(CheckedVarint(pid, &p, end, &cnt64));
              const uint32_t cnt = static_cast<uint32_t>(cnt64);
              if (cnt == 0 || cnt > g.page()->size()) {
                return CorruptionAt(pid, "compact-replica: inline border "
                                         "count out of range");
              }
              br.pts.assign(cnt, Point{});
              for (int d = 0; d < dims - 1; ++d) {
                BOXAGG_RETURN_NOT_OK(
                    CheckedKeys(c, pid, &p, end, cnt, &col));
                for (uint32_t k = 0; k < cnt; ++k) br.pts[k][d] = col[k];
              }
              BOXAGG_RETURN_NOT_OK(
                  CheckedValues(c, pid, &p, end, cnt, &br.vals));
              for (uint32_t k = 1; k < cnt; ++k) {
                if (!LexLess(br.pts[k - 1], br.pts[k], dims - 1)) {
                  return CorruptionAt(pid, "compact-replica: inline border "
                                           "entries not strictly sorted");
                }
              }
            } else if (tag == replica::kBorderSpill) {
              br.spill = true;
              BOXAGG_RETURN_NOT_OK(CheckedVarint(pid, &p, end, &br.ord));
            } else {
              return CorruptionAt(pid, "compact-replica: unknown border "
                                       "tag " + std::to_string(tag));
            }
            rec_borders[i].push_back(std::move(br));
          }
        }
      }
      if (p > end) {
        return CorruptionAt(pid, "compact-replica: node overruns the "
                                 "payload");
      }
    }
    // Per-kind structural checks + recursion (pin dropped).
    info->total = V{};
    if (kind == replica::kNodeAggLeaf) {
      for (uint32_t i = 1; i < n; ++i) {
        if (!(keys[i - 1] < keys[i])) {
          return CorruptionAt(pid, "compact-replica: agg leaf keys not "
                                   "strictly increasing");
        }
      }
      for (uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.pt = Point{};
        e.pt[0] = keys[i];
        e.value = vals[i];
        out->push_back(e);
        info->total += vals[i];
      }
      *entries += n;
      info->depth = 1;
      return Status::OK();
    }
    if (kind == replica::kNodeAggInternal) {
      for (uint32_t i = 1; i < n; ++i) {
        if (!(keys[i - 1] < keys[i])) {
          return CorruptionAt(pid, "compact-replica: agg internal lowkeys "
                                   "not strictly increasing");
        }
      }
      uint32_t child_depth = 0;
      for (uint32_t i = 0; i < n; ++i) {
        WalkInfo ci;
        BOXAGG_RETURN_NOT_OK(CheckNodeRec(c, first_child + i, dims, reached,
                                          entries, out, &ci));
        if (i == 0) {
          child_depth = ci.depth;
        } else if (ci.depth != child_depth) {
          return CorruptionAt(pid, "compact-replica: agg subtree depths "
                                   "differ");
        }
        if (AggDrift(vals[i], ci.total) > kAggDriftTolerance) {
          return CorruptionAt(pid, "compact-replica: agg subtree sum "
                                   "drifts from the stored aggregate");
        }
        info->total += vals[i];
      }
      info->depth = child_depth + 1;
      return Status::OK();
    }
    if (kind == replica::kNodeBaLeaf) {
      for (uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.pt = Point{};
        for (int d = 0; d < dims; ++d) e.pt[d] = cols[d][i];
        e.value = vals[i];
        out->push_back(e);
      }
      *entries += n;
      info->depth = 1;
      return Status::OK();
    }
    // kNodeBaInternal: child points inside their record box, boxes tile
    // the node scope, borders audited (inline counted above, spills
    // recursed structurally like PackedBaTree::CheckBorderTree).
    const size_t begin = out->size();
    for (uint32_t i = 0; i < n; ++i) {
      const size_t lo = out->size();
      WalkInfo ci;
      BOXAGG_RETURN_NOT_OK(CheckNodeRec(c, first_child + i, dims, reached,
                                        entries, out, &ci));
      for (size_t k = lo; k < out->size(); ++k) {
        if (!boxes[i].ContainsPointHalfOpen((*out)[k].pt, dims)) {
          return CorruptionAt(pid, "compact-replica: subtree point escapes "
                                   "its record box");
        }
      }
      for (const BorderRef& br : rec_borders[i]) {
        if (br.spill) {
          std::vector<Entry> scratch;
          WalkInfo bi;
          BOXAGG_RETURN_NOT_OK(CheckNodeRec(c, br.ord, dims - 1, reached,
                                            entries, &scratch, &bi));
        } else {
          *entries += br.pts.size();
        }
      }
    }
    for (size_t k = begin; k < out->size(); ++k) {
      int owners = 0;
      for (uint32_t i = 0; i < n; ++i) {
        if (boxes[i].ContainsPointHalfOpen((*out)[k].pt, dims)) ++owners;
      }
      if (owners != 1) {
        return CorruptionAt(pid, "compact-replica: record boxes do not "
                                 "tile the node scope");
      }
    }
    info->depth = 0;  // mixed-depth forests: BA depth is not audited here
    return Status::OK();
  }

  /// Sampled naive-oracle comparison over the main-branch points, the same
  /// discipline (and tolerance) as PackedBaTree::SelfOracle.
  Status SelfOracle(const std::vector<Entry>& pts) const {
    const size_t step = pts.size() <= 400 ? 1 : pts.size() / 400;
    for (size_t k = 0; k < pts.size(); k += step) {
      for (double jitter : {0.0, 0.25}) {
        Point q = pts[k].pt;
        for (int d = 0; d < dims_; ++d) q[d] += jitter;
        V got;
        BOXAGG_RETURN_NOT_OK(DominanceSum(q, &got));
        V want{};
        for (const Entry& e : pts) {
          if (q.Dominates(e.pt, dims_)) want += e.value;
        }
        if (AggDrift(want, got) > kAggDriftTolerance) {
          return Status::Corruption(
              "compact-replica: self-oracle dominance-sum mismatch");
        }
      }
    }
    return Status::OK();
  }

  BufferPool* pool_;
  int dims_;
  PageId root_;
  std::shared_ptr<const Cache> cache_;
};

}  // namespace boxagg

#endif  // BOXAGG_REPLICA_COMPACT_REPLICA_H_
