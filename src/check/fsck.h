// boxagg_fsck core: opens a .bag index file (recovering it, exactly like a
// normal open) and runs every validator over it in two sweeps:
//
//   Physical sweep — every slot of the backing file is read through the
//   CRC32C page layer. A verification failure on a page the recovered
//   generation depends on (a superblock in use, a map page, a mapped page
//   image) is corruption; a failure on a free page is only a note, because
//   torn writes of an interrupted commit legitimately litter unreferenced
//   slots. Mapped pages additionally cross-check the epoch stamped in the
//   slot header against the map's expectation: a mismatch means a lost
//   write left a stale older-generation version on the platter (note by
//   default, corruption under strict).
//
//   Logical sweep — each root tree runs its CheckConsistency pass against
//   one shared page-visit set (catching cross-tree page sharing), errors
//   collected per structure rather than aborting at the first, followed by
//   buffer-pool / page-file accounting audits and an orphan sweep for
//   mapped logical pages reachable from no root.
//
// Library form so the CLI (tools/boxagg_fsck.cpp), the corruption-injection
// tests, and the crash-torture harness share one implementation. The root
// checker is pluggable: the CLI verifies PackedBaTree roots (what
// boxagg_cli builds), crash_torture plugs in its own mixed-tree checker.

#ifndef BOXAGG_CHECK_FSCK_H_
#define BOXAGG_CHECK_FSCK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/status.h"

namespace boxagg {

class BufferPool;
class PageFile;
struct CheckContext;

struct FsckOptions {
  /// Run each tree's query self-oracle on top of the structural checks.
  bool check_oracle = true;
  /// Treat mapped-but-unreachable logical pages as corruption instead of a
  /// note. Off by default: a crashed build legitimately leaves dead pages
  /// behind, and the trees over the reachable pages are still fully usable.
  bool strict_orphans = false;
  /// Treat stale reachable pages (slot epoch older than the map expects —
  /// a lost write) as corruption instead of a note.
  bool strict_stale = false;
  /// Verify this specific durable generation instead of the newest
  /// recoverable one (-1). The store is opened read-only in that case, so
  /// inspecting the older generation never disturbs the newer one.
  int64_t target_generation = -1;
  /// Additionally run the logical sweep over the other durable generation
  /// (when its superblock slot is valid). Cross-generation aliasing — one
  /// physical page claimed by both generations under different
  /// (logical, epoch) identities — is always an error when detectable.
  bool all_generations = false;
  uint32_t page_size = kDefaultPageSize;
};

struct FsckReport {
  uint64_t generation = 0;     ///< generation the file recovered to
  uint64_t file_pages = 0;     ///< physical pages (incl. superblock slots)
  uint64_t logical_pages = 0;  ///< logical address-space size
  uint64_t mapped_pages = 0;   ///< logical pages with live contents
  uint64_t visited_pages = 0;  ///< logical pages owned by some root tree
  uint64_t orphan_pages = 0;   ///< mapped but reachable from no root
  /// Physical slots failing CRC/magic/id verification, split by whether
  /// the recovered generation depends on them.
  uint64_t checksum_failures_live = 0;
  uint64_t checksum_failures_free = 0;
  uint64_t stale_pages = 0;    ///< mapped pages holding an older epoch
  /// Physical pages referenced only by the *other* durable generation
  /// (retired by the checked one, or not yet visible to it). Distinguished
  /// from true orphans: they are still reachable through that generation.
  uint64_t retired_pages = 0;
  int64_t other_generation = -1;  ///< second durable generation (-1: none)
  uint32_t dims = 0;
  std::vector<PageId> roots;
  /// One entry per corrupt root: "root <i>: <diagnosis>". Empty when every
  /// structure checks out.
  std::vector<std::string> root_errors;
  std::vector<std::string> notes;  ///< non-fatal observations
};

/// Verifies one root tree. `root` is never kInvalidPageId (empty roots are
/// skipped before the checker runs); `ctx` carries the shared visit set.
using FsckRootChecker = std::function<Status(
    BufferPool* pool, uint32_t dims, size_t root_index, PageId root,
    CheckContext* ctx)>;

/// Verifies the .bag store in `physical` (both sweeps above). OK if every
/// check passes; Status::Corruption summarizing all violations otherwise;
/// `report` (optional) is filled with whatever was learned before the
/// verdict, so callers can print context even for corrupt files. With no
/// `root_checker`, roots are verified as PackedBaTree structures (the
/// boxagg_cli layout).
Status FsckBag(PageFile* physical, const FsckOptions& options,
               FsckReport* report = nullptr,
               const FsckRootChecker& root_checker = {});

/// FsckBag over the file at `path`; IoError if it cannot be opened.
Status FsckIndexFile(const std::string& path, const FsckOptions& options,
                     FsckReport* report = nullptr);

}  // namespace boxagg

#endif  // BOXAGG_CHECK_FSCK_H_
