// boxagg_fsck core: opens a .bag index file and runs every validator over it
// — superblock sanity, a CheckConsistency pass on each root tree with one
// shared page-visit set (catching cross-tree page sharing), buffer-pool and
// page-file accounting, and a final reachability sweep for orphaned pages.
//
// Library form so the CLI (tools/boxagg_fsck.cpp) and the corruption-
// injection tests share one implementation.

#ifndef BOXAGG_CHECK_FSCK_H_
#define BOXAGG_CHECK_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/status.h"

namespace boxagg {

struct FsckOptions {
  /// Run each tree's query self-oracle on top of the structural checks.
  bool check_oracle = true;
  /// Treat unreachable (orphaned) pages as corruption instead of a note.
  /// Off by default: a crashed build legitimately leaves dead pages behind,
  /// and the trees over the reachable pages are still fully usable.
  bool strict_orphans = false;
  uint32_t page_size = kDefaultPageSize;
};

struct FsckReport {
  uint64_t file_pages = 0;    ///< total pages in the file (incl. superblock)
  uint64_t visited_pages = 0; ///< pages owned by some root tree + page 0
  uint64_t orphan_pages = 0;  ///< allocated but reachable from no root
  uint32_t dims = 0;
  std::vector<PageId> roots;
  std::vector<std::string> notes;  ///< non-fatal observations
};

/// Verifies the index file at `path`. OK if every check passes;
/// Status::Corruption (with page-level diagnostics) on the first violation;
/// IoError if the file cannot be opened. `report` (optional) is filled with
/// whatever was learned before the verdict, so callers can print context
/// even for corrupt files.
Status FsckIndexFile(const std::string& path, const FsckOptions& options,
                     FsckReport* report = nullptr);

}  // namespace boxagg

#endif  // BOXAGG_CHECK_FSCK_H_
