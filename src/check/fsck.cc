#include "check/fsck.h"

#include <memory>
#include <string>
#include <unordered_map>

#include "batree/packed_ba_tree.h"
#include "check/checkable.h"
#include "core/bag_file.h"
#include "replica/compact_replica.h"
#include "replica/replica_format.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace boxagg {

namespace {

// Role of a physical page in the recovered generation; decides whether a
// verification failure there is corruption or an expected crash artifact.
enum PhysClass : uint8_t {
  kPhysFree = 0,   // unreferenced: torn leftovers are legitimate
  kPhysSuper,      // superblock slot (one may hold a torn in-flight commit)
  kPhysMap,        // map-chain page of the recovered generation
  kPhysData,       // image of a mapped logical page
  kPhysRetired,    // referenced only by the *other* durable generation
};

// Human-readable role of a physical page for aliasing diagnostics.
std::string DescribeClass(uint8_t c, PageId logical) {
  switch (c) {
    case kPhysSuper:
      return "a superblock slot";
    case kPhysMap:
      return "the checked generation's map page";
    case kPhysData:
      return "the checked generation's image of logical page " +
             std::to_string(logical);
    default:
      return "unclassified";
  }
}

Status DefaultRootChecker(BufferPool* pool, uint32_t dims,
                          size_t /*root_index*/, PageId root,
                          CheckContext* ctx) {
  // Sniff the root page class: replica header pages carry their own type
  // (live PackedBaTree/AggBTree roots use the tree node types).
  {
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(pool->Fetch(root, &g));
    if (g.page()->ReadAt<uint16_t>(0) == replica::kHeaderPageType) {
      g.Release();
      CompactReplica<double> rep(pool, static_cast<int>(dims), root);
      return rep.CheckConsistency(ctx);
    }
  }
  PackedBaTree<double> tree(pool, static_cast<int>(dims), root);
  return tree.CheckConsistency(ctx);
}

}  // namespace

Status FsckBag(PageFile* physical, const FsckOptions& options,
               FsckReport* report, const FsckRootChecker& root_checker) {
  FsckReport local_report;
  if (report == nullptr) report = &local_report;
  *report = FsckReport{};
  report->file_pages = physical->page_count();

  // Opening IS recovery: superblock selection, map load, duplicate-
  // reference detection, free-list rebuild all happen (and can fail) here.
  // Generation-targeted runs open read-only so inspecting the superseded
  // generation never sweeps the newer one's pages onto the free list.
  const bool inspect_only = options.target_generation >= 0;
  std::unique_ptr<BagFile> bag;
  BagRecoveryReport rec;
  BagOpenOptions bopen;
  bopen.target_generation = options.target_generation;
  bopen.read_only = inspect_only;
  BOXAGG_RETURN_NOT_OK(BagFile::Open(physical, bopen, &bag, &rec));
  report->generation = rec.generation;
  report->logical_pages = rec.logical_pages;
  report->mapped_pages = rec.mapped_pages;
  report->dims = bag->dims();
  report->roots = bag->roots();
  if (rec.fell_back) {
    report->notes.push_back(
        "newer superblock slot invalid (interrupted commit); recovered to "
        "generation " + std::to_string(rec.generation));
  }
  if (rec.orphaned_physical > 0) {
    report->notes.push_back(std::to_string(rec.orphaned_physical) +
                            " unreachable physical page(s) swept to the "
                            "free list");
  }

  std::vector<std::string> errors;

  // -- physical sweep: verify every slot's checksum envelope --------------
  std::vector<uint8_t> cls(physical->page_count(), kPhysFree);
  cls[0] = cls[1] = kPhysSuper;
  for (PageId id : bag->map_page_ids()) cls[id] = kPhysMap;
  std::unordered_map<PageId, PageId> phys_to_logical;
  for (PageId logical = 0; logical < bag->page_count(); ++logical) {
    const BagMapEntry e = bag->MapEntry(logical);
    if (!e.mapped()) continue;
    cls[e.physical] = kPhysData;
    phys_to_logical.emplace(e.physical, logical);
  }

  // -- cross-generation analysis ------------------------------------------
  // The other superblock slot may hold a second durable generation (the one
  // just superseded, or the newer one when fsck targets the older). Its
  // exclusive pages are *retired*, not orphaned: unreferenced by the checked
  // generation but still reachable through the other. A physical page both
  // generations claim must carry the same (logical, epoch) identity — that
  // is ordinary CoW sharing of an unmodified page; differing identities mean
  // the allocator handed one slot to two owners (cross-generation aliasing),
  // corrupting whichever generation wrote second.
  std::unique_ptr<BagFile> other;
  int64_t other_gen = -1;
  for (int64_t cand : {static_cast<int64_t>(rec.generation) - 1,
                       static_cast<int64_t>(rec.generation) + 1}) {
    if (cand < 0) continue;
    BagOpenOptions oo;
    oo.target_generation = cand;
    oo.read_only = true;
    std::unique_ptr<BagFile> b;
    if (BagFile::Open(physical, oo, &b).ok()) {
      other = std::move(b);
      other_gen = cand;
      break;
    }
  }
  std::unordered_map<PageId, PageId> other_phys_to_logical;
  if (other != nullptr) {
    report->other_generation = other_gen;
    for (PageId mp : other->map_page_ids()) {
      if (mp >= cls.size()) {
        errors.push_back("generation " + std::to_string(other_gen) +
                         " map page " + std::to_string(mp) +
                         " lies beyond the file");
      } else if (cls[mp] == kPhysFree) {
        cls[mp] = kPhysRetired;
        ++report->retired_pages;
      } else {
        // Map chains are rewritten whole every commit, so any overlap with
        // the checked generation's footprint is aliasing.
        errors.push_back(
            "cross-generation aliasing: physical page " + std::to_string(mp) +
            " is generation " + std::to_string(other_gen) +
            "'s map page but also " + DescribeClass(cls[mp], phys_to_logical[mp]));
      }
    }
    for (PageId logical = 0; logical < other->page_count(); ++logical) {
      const BagMapEntry oe = other->MapEntry(logical);
      if (!oe.mapped()) continue;
      if (oe.physical >= cls.size()) {
        errors.push_back("generation " + std::to_string(other_gen) +
                         " maps logical page " + std::to_string(logical) +
                         " beyond the file");
        continue;
      }
      other_phys_to_logical.emplace(oe.physical, logical);
      switch (cls[oe.physical]) {
        case kPhysFree:
          cls[oe.physical] = kPhysRetired;
          ++report->retired_pages;
          break;
        case kPhysData: {
          const PageId mine_logical = phys_to_logical[oe.physical];
          const BagMapEntry mine = bag->MapEntry(mine_logical);
          if (mine_logical != logical || mine.epoch != oe.epoch) {
            errors.push_back(
                "cross-generation aliasing: physical page " +
                std::to_string(oe.physical) + " is generation " +
                std::to_string(other_gen) + "'s logical " +
                std::to_string(logical) + " (epoch " +
                std::to_string(oe.epoch) + ") but the checked generation's "
                "logical " + std::to_string(mine_logical) + " (epoch " +
                std::to_string(mine.epoch) + ")");
          }
          break;  // same (logical, epoch): CoW sharing, stays kPhysData
        }
        case kPhysRetired:
          break;  // already classified via the other generation itself
        default:  // kPhysSuper / kPhysMap
          errors.push_back(
              "cross-generation aliasing: physical page " +
              std::to_string(oe.physical) + " is generation " +
              std::to_string(other_gen) + "'s logical " +
              std::to_string(logical) + " but also " +
              DescribeClass(cls[oe.physical], phys_to_logical[oe.physical]));
          break;
      }
    }
    report->notes.push_back(
        "second durable generation " + std::to_string(other_gen) +
        " present; " + std::to_string(report->retired_pages) +
        " physical page(s) reachable only through it (retired, not orphaned)");
  }

  Page scan(physical->page_size());
  for (PageId id = 0; id < physical->page_count(); ++id) {
    uint64_t epoch = 0;
    Status st = physical->ReadPageEx(id, &scan, &epoch);
    if (!st.ok()) {
      switch (cls[id]) {
        case kPhysSuper:
          // BagFile::Open read the *active* slot successfully, so this can
          // only be the inactive slot — a torn in-flight commit is normal.
          report->notes.push_back("superblock slot " + std::to_string(id) +
                                  " fails verification (interrupted-commit "
                                  "artifact): " + st.message());
          break;
        case kPhysFree:
          ++report->checksum_failures_free;
          report->notes.push_back("free physical page " + std::to_string(id) +
                                  " fails verification (crash artifact): " +
                                  st.message());
          break;
        case kPhysRetired: {
          // Damage to the other generation's exclusive pages: corruption of
          // *that* generation, so it only fails this run under
          // --all-generations (where we vouch for both).
          const std::string what =
              "retired physical page " + std::to_string(id) +
              " (generation " + std::to_string(other_gen) +
              ") fails verification: " + st.message();
          if (options.all_generations) {
            ++report->checksum_failures_live;
            errors.push_back(what);
          } else {
            ++report->checksum_failures_free;
            report->notes.push_back(what);
          }
          break;
        }
        default:
          ++report->checksum_failures_live;
          errors.push_back("physical page " + std::to_string(id) +
                           (cls[id] == kPhysMap ? " (map page): "
                                                : " (mapped image): ") +
                           st.message());
          break;
      }
      continue;
    }
    if (cls[id] == kPhysData && epoch != bag->MapEntry(
                                             phys_to_logical[id]).epoch) {
      ++report->stale_pages;
      const std::string what =
          "physical page " + std::to_string(id) + " (logical " +
          std::to_string(phys_to_logical[id]) + ") holds epoch " +
          std::to_string(epoch) + ", map expects " +
          std::to_string(bag->MapEntry(phys_to_logical[id]).epoch) +
          " (lost write)";
      if (options.strict_stale) {
        errors.push_back(what);
      } else {
        report->notes.push_back(what);
      }
    }
    if (options.all_generations && cls[id] == kPhysRetired &&
        other_phys_to_logical.count(id) != 0 &&
        epoch != other->MapEntry(other_phys_to_logical[id]).epoch) {
      ++report->stale_pages;
      const std::string what =
          "retired physical page " + std::to_string(id) + " (generation " +
          std::to_string(other_gen) + " logical " +
          std::to_string(other_phys_to_logical[id]) + ") holds epoch " +
          std::to_string(epoch) + ", that generation's map expects " +
          std::to_string(other->MapEntry(other_phys_to_logical[id]).epoch) +
          " (lost write)";
      if (options.strict_stale) {
        errors.push_back(what);
      } else {
        report->notes.push_back(what);
      }
    }
  }

  // -- logical sweep: per-root structural checks --------------------------
  // The pool must hold a root-to-leaf pin chain per nesting level of border
  // trees; 16 MB is far beyond any tree the format can describe.
  BufferPool pool(bag.get(),
                  BufferPool::CapacityForMegabytes(16, options.page_size));
  const FsckRootChecker& checker =
      root_checker ? root_checker : FsckRootChecker(DefaultRootChecker);
  CheckContext ctx;
  ctx.check_oracle = options.check_oracle;
  const std::vector<PageId>& roots = bag->roots();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (roots[i] == kInvalidPageId) {
      report->notes.push_back("root " + std::to_string(i) +
                              " is empty (no pages)");
      continue;
    }
    std::string err;
    if (roots[i] >= bag->page_count()) {
      err = "points beyond the logical space";
    } else if (!bag->IsMapped(roots[i])) {
      err = "points at an unmapped logical page";
    } else if (Status st = checker(&pool, bag->dims(), i, roots[i], &ctx);
               !st.ok()) {
      err = st.message();
    }
    if (!err.empty()) {
      report->root_errors.push_back("root " + std::to_string(i) + ": " + err);
    }
  }
  report->visited_pages = ctx.visited.size();

  // -- second-generation logical sweep (--all-generations) ----------------
  // Same structural checks against the other durable generation, through
  // its own read-only handle and pool. A fresh CheckContext: the two
  // generations legitimately share physical pages but own disjoint logical
  // spaces, so visit sets must not bleed across.
  if (options.all_generations && other != nullptr) {
    BufferPool opool(other.get(),
                     BufferPool::CapacityForMegabytes(16, options.page_size));
    CheckContext octx;
    octx.check_oracle = options.check_oracle;
    const std::vector<PageId>& oroots = other->roots();
    for (size_t i = 0; i < oroots.size(); ++i) {
      if (oroots[i] == kInvalidPageId) continue;
      std::string err;
      if (oroots[i] >= other->page_count()) {
        err = "points beyond the logical space";
      } else if (!other->IsMapped(oroots[i])) {
        err = "points at an unmapped logical page";
      } else if (Status st =
                     checker(&opool, other->dims(), i, oroots[i], &octx);
                 !st.ok()) {
        err = st.message();
      }
      if (!err.empty()) {
        report->root_errors.push_back("generation " +
                                      std::to_string(other_gen) + " root " +
                                      std::to_string(i) + ": " + err);
      }
    }
  }
  for (const std::string& e : report->root_errors) errors.push_back(e);

  if (!report->root_errors.empty()) {
    report->notes.push_back(
        "accounting and orphan checks skipped (structural errors present)");
  } else if (inspect_only) {
    // A read-only generation-targeted open leaves the physical free list
    // unrebuilt and skips the orphan sweep, so allocation accounting has
    // nothing trustworthy to audit.
    report->notes.push_back(
        "accounting and orphan checks skipped (read-only "
        "generation-targeted open)");
  } else {
    // Storage-engine accounting. Every fsck guard is released by now, so
    // any surviving pin would be a leak inside the checkers themselves.
    // (Skipped when structures are corrupt: an aborted checker tells us
    // nothing new about the pool.)
    ctx.expect_unpinned = true;
    if (Status st = pool.CheckConsistency(&ctx); !st.ok()) {
      errors.push_back("buffer pool: " + st.message());
    }
    if (Status st = bag->CheckConsistency(&ctx); !st.ok()) {
      errors.push_back("logical allocation: " + st.message());
    }
    if (Status st = physical->CheckConsistency(&ctx); !st.ok()) {
      errors.push_back("physical allocation: " + st.message());
    }

    // Orphan sweep: every mapped logical page should be owned by a tree.
    uint64_t orphans = 0;
    PageId first_orphan = kInvalidPageId;
    for (PageId pid = 0; pid < bag->page_count(); ++pid) {
      if (!bag->IsMapped(pid) || ctx.visited.count(pid) != 0) continue;
      if (first_orphan == kInvalidPageId) first_orphan = pid;
      ++orphans;
    }
    report->orphan_pages = orphans;
    if (orphans > 0) {
      const std::string what =
          std::to_string(orphans) +
          " mapped page(s) reachable from no root (first: page " +
          std::to_string(first_orphan) + ")";
      if (options.strict_orphans) {
        errors.push_back(what);
      } else {
        report->notes.push_back(what);
      }
    }
  }

  if (!errors.empty()) {
    std::string msg = errors.front();
    if (errors.size() > 1) {
      msg += " (+" + std::to_string(errors.size() - 1) +
             " more; see report)";
    }
    return Status::Corruption(msg);
  }
  return Status::OK();
}

Status FsckIndexFile(const std::string& path, const FsckOptions& options,
                     FsckReport* report) {
  std::unique_ptr<FilePageFile> file;
  BOXAGG_RETURN_NOT_OK(
      FilePageFile::Open(path, options.page_size, /*truncate=*/false, &file));
  return FsckBag(file.get(), options, report);
}

}  // namespace boxagg
