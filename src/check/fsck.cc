#include "check/fsck.h"

#include <memory>
#include <string>
#include <unordered_set>

#include "batree/packed_ba_tree.h"
#include "check/checkable.h"
#include "core/bag_format.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace boxagg {

Status FsckIndexFile(const std::string& path, const FsckOptions& options,
                     FsckReport* report) {
  FsckReport local_report;
  if (report == nullptr) report = &local_report;
  *report = FsckReport{};

  std::unique_ptr<FilePageFile> file;
  BOXAGG_RETURN_NOT_OK(
      FilePageFile::Open(path, options.page_size, /*truncate=*/false, &file));
  report->file_pages = file->page_count();
  if (file->page_count() == 0) {
    return Status::Corruption("empty file (no superblock)");
  }

  // The pool must hold a root-to-leaf pin chain per nesting level of border
  // trees; 16 MB is far beyond any tree the format can describe.
  BufferPool pool(file.get(),
                  BufferPool::CapacityForMegabytes(16, options.page_size));

  BagSuperblock sb;
  {
    PageGuard super;
    BOXAGG_RETURN_NOT_OK(pool.Fetch(0, &super));
    BOXAGG_RETURN_NOT_OK(ReadBagSuperblock(*super.page(), &sb));
  }
  report->dims = sb.dims;
  report->roots = sb.roots;

  CheckContext ctx;
  ctx.check_oracle = options.check_oracle;
  BOXAGG_RETURN_NOT_OK(ctx.Visit(0, "superblock"));
  for (size_t i = 0; i < sb.roots.size(); ++i) {
    if (sb.roots[i] == kInvalidPageId) {
      report->notes.push_back("root " + std::to_string(i) +
                              " is empty (no pages)");
      continue;
    }
    if (sb.roots[i] >= file->page_count()) {
      return CorruptionAt(sb.roots[i],
                          "root " + std::to_string(i) +
                              " points beyond the end of the file");
    }
    PackedBaTree<double> tree(&pool, static_cast<int>(sb.dims), sb.roots[i]);
    if (Status st = tree.CheckConsistency(&ctx); !st.ok()) {
      return Status::Corruption("root " + std::to_string(i) + ": " +
                                st.message());
    }
  }
  report->visited_pages = ctx.visited.size();

  // Storage-engine accounting. Every fsck guard is released by now, so any
  // surviving pin would be a leak inside the checkers themselves.
  ctx.expect_unpinned = true;
  BOXAGG_RETURN_NOT_OK(pool.CheckConsistency(&ctx));
  BOXAGG_RETURN_NOT_OK(file->CheckConsistency(&ctx));

  // Reachability: every allocated page should be page 0, owned by a tree,
  // or on the (session-local) free list.
  std::unordered_set<PageId> free_pages(file->free_list().begin(),
                                        file->free_list().end());
  uint64_t orphans = 0;
  PageId first_orphan = kInvalidPageId;
  for (PageId pid = 0; pid < file->page_count(); ++pid) {
    if (ctx.visited.count(pid) || free_pages.count(pid)) continue;
    if (first_orphan == kInvalidPageId) first_orphan = pid;
    ++orphans;
  }
  report->orphan_pages = orphans;
  if (orphans > 0) {
    const std::string what =
        std::to_string(orphans) + " allocated page(s) reachable from no root "
        "(first: page " + std::to_string(first_orphan) + ")";
    if (options.strict_orphans) return Status::Corruption(what);
    report->notes.push_back(what);
  }
  return Status::OK();
}

}  // namespace boxagg
