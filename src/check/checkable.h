// Checkable: the repo-wide structural-verification layer.
//
// Every disk index and the storage engine itself expose
// CheckConsistency(CheckContext*), a deep structural audit that re-derives
// each structure's invariants from its raw pages and reports the first
// violation as Status::Corruption with page-level diagnostics. The paper's
// structures are only as trustworthy as their invariants — the aggregate
// B+-tree's subtree-sum identity, the ECDF-B-tree border/projection
// consistency (Sec. 4), the BA-tree border augmentation (Sec. 5), the
// aR-tree MBR/aggregate identities — and an aggregate index with a drifted
// invariant returns plausible-but-wrong sums that no query-level test can
// distinguish from correct ones.
//
// The CheckContext threads a page-visit set through every structure checked
// against the same file, so page-graph corruption (two structures sharing a
// page, a cycle, a dangling child pointer re-entering an already-owned
// subtree) is detected across structure boundaries — this is what
// boxagg_fsck runs over a whole index file.

#ifndef BOXAGG_CHECK_CHECKABLE_H_
#define BOXAGG_CHECK_CHECKABLE_H_

#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/page.h"
#include "storage/status.h"

namespace boxagg {

/// Builds a Status::Corruption carrying the page id where the invariant
/// broke, so fsck output and test failures point at the offending page.
inline Status CorruptionAt(PageId pid, const std::string& what) {
  return Status::Corruption("page " + std::to_string(pid) + ": " + what);
}

/// \brief Shared state for one verification pass.
///
/// A single context may be threaded through many structures that live in the
/// same PageFile; the visited set then catches pages claimed by two owners.
struct CheckContext {
  /// Every page visited so far; a revisit within one pass is corruption
  /// (cycle or a page owned by two structures).
  std::unordered_set<PageId> visited;

  /// Run the (slower) self-oracle query sampling where a structure offers
  /// one. Structure-only passes (e.g. fsck over huge files) may disable it.
  bool check_oracle = true;

  /// When set, BufferPool::CheckConsistency treats any pinned frame as
  /// corruption. Quiescent points (end of a batch, fsck, pool teardown) own
  /// no PageGuards, so a surviving pin there is a leaked guard.
  bool expect_unpinned = false;

  /// Marks `pid` visited; Corruption if it was already seen in this pass.
  Status Visit(PageId pid, const char* structure) {
    if (!visited.insert(pid).second) {
      return CorruptionAt(pid, std::string(structure) +
                                   ": page reached twice (cycle or shared "
                                   "ownership)");
    }
    return Status::OK();
  }
};

/// \brief Interface over anything that can audit its own invariants.
///
/// The index handles are value-semantic templates; RunChecks works on any
/// mix of them via this interface (see MakeCheckable below).
class Checkable {
 public:
  virtual ~Checkable() = default;

  /// Human-readable name for reports ("agg-btree", "buffer-pool", ...).
  virtual const char* CheckName() const = 0;

  /// Deep structural audit; OK or Status::Corruption with page diagnostics.
  virtual Status CheckConsistency(CheckContext* ctx) const = 0;
};

/// Adapter: wraps a reference to any object exposing
/// CheckConsistency(CheckContext*) as a Checkable (no ownership taken).
template <class T>
class CheckableRef final : public Checkable {
 public:
  CheckableRef(const T* target, const char* name)
      : target_(target), name_(name) {}

  const char* CheckName() const override { return name_; }
  Status CheckConsistency(CheckContext* ctx) const override {
    return target_->CheckConsistency(ctx);
  }

 private:
  const T* target_;
  const char* name_;
};

template <class T>
CheckableRef<T> MakeCheckable(const T* target, const char* name) {
  return CheckableRef<T>(target, name);
}

/// Runs every check against one shared context, stopping at the first
/// failure and prefixing it with the failing structure's name.
inline Status RunChecks(const std::vector<const Checkable*>& checks,
                        CheckContext* ctx) {
  for (const Checkable* c : checks) {
    if (Status st = c->CheckConsistency(ctx); !st.ok()) {
      return Status::Corruption(std::string(c->CheckName()) + ": " +
                                st.message());
    }
  }
  return Status::OK();
}

/// Absolute drift between two aggregate values: |a - b| summed over
/// components. Aggregates are rebuilt in a different addition order than the
/// stored ones, so checks compare with a tolerance instead of bit equality.
template <class V>
double AggDrift(const V& a, const V& b) {
  V d = a;
  d -= b;
  if constexpr (std::is_same_v<V, double>) {
    return std::abs(d);
  } else {
    double s = 0;
    for (double c : d.c) s += std::abs(c);
    return s;
  }
}

/// Tolerance for subtree-sum identities; generous relative to the unit-scale
/// values the tests and benches insert, tight enough to catch any real
/// drift (a lost or double-counted entry shifts sums by >= one value).
inline constexpr double kAggDriftTolerance = 1e-6;

}  // namespace boxagg

#endif  // BOXAGG_CHECK_CHECKABLE_H_
