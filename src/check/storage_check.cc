// Storage-engine CheckConsistency implementations: the sharded BufferPool's
// frame/LRU/free-list accounting and the PageFile's allocation state.
//
// They live in src/check/ (not storage/) so the storage layer keeps zero
// dependencies on the verification layer beyond a CheckContext forward
// declaration in its headers.

#include <string>
#include <unordered_set>

#include "check/checkable.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace boxagg {

namespace {

Status ShardCorruption(size_t shard, const std::string& what) {
  return Status::Corruption("buffer-pool shard " + std::to_string(shard) +
                            ": " + what);
}

}  // namespace

Status BufferPool::CheckConsistency(CheckContext* ctx) const {
  CheckContext local;
  if (ctx == nullptr) ctx = &local;
  for (size_t si = 0; si < shards_.size(); ++si) {
    const Shard& s = *shards_[si];
    sync::MutexLock lock(&s.mu);

    // Every lazily allocated frame is exactly one of: resident (page table)
    // or free. A frame in neither is leaked; one in both is double-owned.
    if (s.frames.size() + s.free_frames.size() != s.frame_storage.size()) {
      return ShardCorruption(
          si, "frame accounting mismatch: " + std::to_string(s.frames.size()) +
                  " resident + " + std::to_string(s.free_frames.size()) +
                  " free != " + std::to_string(s.frame_storage.size()) +
                  " allocated");
    }
    if (s.frame_storage.size() > s.capacity) {
      return ShardCorruption(
          si, "allocated " + std::to_string(s.frame_storage.size()) +
                  " frames, capacity " + std::to_string(s.capacity));
    }

    size_t in_lru_frames = 0;
    for (const auto& [id, f] : s.frames) {
      if (f == nullptr) {
        return ShardCorruption(si, "null frame pointer in page table");
      }
      if (f->id != id) {
        return CorruptionAt(id, "frame id " + std::to_string(f->id) +
                                    " disagrees with its page-table key");
      }
      if (ShardOf(id) != si || f->shard != si) {
        return CorruptionAt(id, "page resident in shard " +
                                    std::to_string(si) +
                                    " but hashes to shard " +
                                    std::to_string(ShardOf(id)));
      }
      const int pins = f->pin_count.load(std::memory_order_relaxed);
      if (pins < 0) {
        return CorruptionAt(id,
                            "negative pin count " + std::to_string(pins));
      }
      if (ctx->expect_unpinned && pins > 0) {
        return CorruptionAt(id, "still pinned (" + std::to_string(pins) +
                                    " pins) at a quiescent point — leaked "
                                    "PageGuard");
      }
      // Unpin re-links a frame into the LRU the moment its last pin drops,
      // and Fetch/New unlink before pinning, so residency splits exactly:
      // pinned <=> off-LRU.
      if (f->in_lru != (pins == 0)) {
        return CorruptionAt(
            id, f->in_lru ? "in LRU while pinned (evictable under a guard)"
                          : "unpinned but not in LRU (never evictable)");
      }
      if (f->in_lru) ++in_lru_frames;
    }

    if (s.lru.size() != in_lru_frames) {
      return ShardCorruption(
          si, "LRU list holds " + std::to_string(s.lru.size()) +
                  " frames but " + std::to_string(in_lru_frames) +
                  " resident frames claim membership");
    }
    for (auto it = s.lru.begin(); it != s.lru.end(); ++it) {
      Frame* f = *it;
      if (f == nullptr) return ShardCorruption(si, "null frame in LRU list");
      if (!f->in_lru || f->lru_pos != it) {
        return CorruptionAt(f->id, "stale LRU position (lru_pos does not "
                                   "point back at the list node)");
      }
      auto res = s.frames.find(f->id);
      if (res == s.frames.end() || res->second != f) {
        return ShardCorruption(si, "LRU frame for page " +
                                       std::to_string(f->id) +
                                       " is not in the page table");
      }
    }

    for (const Frame* f : s.free_frames) {
      if (f == nullptr) return ShardCorruption(si, "null frame in free list");
      if (f->id != kInvalidPageId) {
        return ShardCorruption(si, "free frame still carries page " +
                                       std::to_string(f->id));
      }
      if (f->pin_count.load(std::memory_order_relaxed) != 0) {
        return ShardCorruption(si, "free frame has a non-zero pin count");
      }
      if (f->in_lru) {
        return ShardCorruption(si, "free frame still linked into the LRU");
      }
    }
  }
  return Status::OK();
}

Status PageFile::CheckConsistency(CheckContext* ctx) const {
  (void)ctx;  // allocation state is global, not part of the page graph
  if (free_list_.size() > page_count_) {
    return Status::Corruption(
        "page-file free list holds " + std::to_string(free_list_.size()) +
        " pages but only " + std::to_string(page_count_) +
        " were ever allocated");
  }
  std::unordered_set<PageId> seen;
  seen.reserve(free_list_.size());
  for (PageId id : free_list_) {
    if (id >= page_count_) {
      return CorruptionAt(id, "on the free list but beyond the end of the "
                              "file (page_count " +
                                  std::to_string(page_count_) + ")");
    }
    if (!seen.insert(id).second) {
      return CorruptionAt(id, "freed twice (duplicate free-list entry)");
    }
  }
  return Status::OK();
}

}  // namespace boxagg
