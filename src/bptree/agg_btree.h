// AggBTree: a disk-based B+-tree whose internal records carry subtree
// aggregates, answering 1-dimensional dominance-sum queries ("total value of
// all keys <= q") in O(log_B n) I/Os with O(log_B n) insertion.
//
// This structure is the base case of every recursive index in the paper: a
// 1-dimensional ECDF-B-tree and a 1-dimensional BA-tree are exactly this tree
// (it is also the structural idea behind the JSB-tree of [37]). Borders of
// higher-dimensional trees bottom out here.
//
// The tree is an additive-group aggregate index: it stores sums, not objects.
// Deletion of a previously inserted (key, v) is Insert(key, -v). Entries with
// equal keys are coalesced, so the entry count is the number of distinct keys.
//
// Page layout (fixed page size from the BufferPool's PageFile). Nodes are
// structure-of-arrays: the keys every descent searches sit in one contiguous,
// cache-line-aligned strip at the front of the page, so the in-node search
// (simd::FirstGreater) streams through pure key data instead of striding over
// interleaved values:
//   header:   u16 type (1=leaf, 2=internal), u16 pad, u32 count
//   leaf:     f64 key[LeafCapacity], then V value[LeafCapacity]
//   internal: f64 lowkey[InternalCapacity],
//             then { u64 child, V subtree_sum }[InternalCapacity]
// Capacities — and therefore node fan-out, tree shape, and every I/O count —
// are unchanged from the interleaved layout: the same entries occupy the same
// page budget, only their in-page order differs.
// Internal entry i routes keys in [lowkey_i, lowkey_{i+1}); entry 0's lowkey
// acts as -infinity during routing.

#ifndef BOXAGG_BPTREE_AGG_BTREE_H_
#define BOXAGG_BPTREE_AGG_BTREE_H_

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "check/checkable.h"
#include "core/arena.h"
#include "exec/bulk_loader.h"
#include "obs/query_obs.h"
#include "simd/simd.h"
#include "storage/buffer_pool.h"

namespace boxagg {

/// \brief Handle to a disk-resident aggregate B+-tree.
///
/// The handle owns no pages itself; it records the root PageId, which changes
/// on root splits. Callers embedding a tree inside another page (borders)
/// must persist root() after mutating operations.
///
/// MVCC reads: constructed with a non-null `view` (a pinned generation —
/// core/bag_file.h GenerationPin), every node fetch resolves through
/// BufferPool::FetchSnapshot against that version instead of the live
/// translation map, so queries answer as of the pinned generation while a
/// writer commits newer ones. A view-bound handle is read-only: mutating
/// entry points refuse with InvalidArgument.
template <class V>
class AggBTree {
 public:
  static_assert(std::is_trivially_copyable_v<V>);

  /// An entry as seen by scans and bulk loads.
  struct Entry {
    double key;
    V value;
  };

  AggBTree(BufferPool* pool, PageId root = kInvalidPageId,
           const PageVersionView* view = nullptr)
      : pool_(pool), root_(root), view_(view) {}

  [[nodiscard]] PageId root() const { return root_; }
  [[nodiscard]] bool empty() const { return root_ == kInvalidPageId; }

  static uint32_t LeafCapacity(uint32_t page_size) {
    return (page_size - kHeaderSize) / kLeafEntrySize;
  }
  static uint32_t InternalCapacity(uint32_t page_size) {
    return (page_size - kHeaderSize) / kInternalEntrySize;
  }

  // ---- public layout map ---------------------------------------------------
  // Byte offsets of the SoA strips, exposed for the composite structures that
  // must address AggBTree pages directly (EcdfBTree::CloneAgg patches child
  // pointers while copying subtrees) and for the corruption-injection tests.

  static uint32_t LeafKeyOffset(uint32_t i) { return kHeaderSize + i * 8; }
  static uint32_t LeafValueOffset(uint32_t page_size, uint32_t i) {
    return kHeaderSize + 8 * LeafCapacity(page_size) +
           i * static_cast<uint32_t>(sizeof(V));
  }
  static uint32_t InternalLowKeyOffset(uint32_t i) {
    return kHeaderSize + i * 8;
  }
  static uint32_t InternalChildOffset(uint32_t page_size, uint32_t i) {
    return kHeaderSize + 8 * InternalCapacity(page_size) + i * kInternalRec;
  }
  static uint32_t InternalSumOffset(uint32_t page_size, uint32_t i) {
    return InternalChildOffset(page_size, i) + 8;
  }

  /// True iff pages of `page_size` bytes can hold enough entries for the
  /// split algorithms to operate (>= 4 per node).
  static bool PageSizeViable(uint32_t page_size) {
    return LeafCapacity(page_size) >= 4 && InternalCapacity(page_size) >= 4;
  }

  /// Adds `v` to the aggregate at `key` (coalescing equal keys).
  Status Insert(double key, const V& v) {
    BOXAGG_RETURN_NOT_OK(RequireWritable());
    if (!PageSizeViable(pool_->file()->page_size())) {
      return Status::InvalidArgument("page size too small for value type");
    }
    if (root_ == kInvalidPageId) {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->New(&g));
      SetHeader(g.page(), kLeaf, 1);
      WriteLeafEntry(g.page(), 0, key, v);
      g.MarkDirty();
      root_ = g.id();
      return Status::OK();
    }
    SplitResult split;
    BOXAGG_RETURN_NOT_OK(InsertRec(root_, key, v, &split));
    if (split.happened) {
      // Grow a new root above the two halves.
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(pool_->New(&g));
      SetHeader(g.page(), kInternal, 2);
      WriteInternalEntry(g.page(), 0, split.left_lowkey, root_,
                         split.left_sum);
      WriteInternalEntry(g.page(), 1, split.right_lowkey, split.right_page,
                         split.right_sum);
      g.MarkDirty();
      root_ = g.id();
    }
    return Status::OK();
  }

  // LINT:hot-path — descent: no heap allocation past warm-up (lint.sh)
  /// Sum of values over all keys <= q. An empty tree yields V{}.
  ///
  /// `obs_level` offsets the per-level node-visit attribution (obs/): a
  /// border sub-tree embedded at parent level L passes L+1 so its root
  /// counts at the depth it actually sits in the composite structure.
  Status DominanceSum(double q, V* out, unsigned obs_level = 0) const {
    *out = V{};
    if (root_ == kInvalidPageId) return Status::OK();
    const uint32_t page_size = pool_->file()->page_size();
    PageId pid = root_;
    for (unsigned level = obs_level;; ++level) {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
      obs::NoteNodeVisit(level);
      const Page* p = g.page();
      const uint8_t* base = p->data();
      uint32_t n = Count(p);
      if (Type(p) == kLeaf) {
        const double* keys =
            reinterpret_cast<const double*>(base + kHeaderSize);
        const uint32_t cut = simd::FirstGreater(keys, n, q);
        const uint8_t* vals = base + LeafValueOffset(page_size, 0);
        for (uint32_t i = 0; i < cut; ++i) {
          V v;
          std::memcpy(&v, vals + size_t{i} * sizeof(V), sizeof(V));
          *out += v;
        }
        return Status::OK();
      }
      uint32_t idx = RouteInternal(p, n, q);
      const uint8_t* recs = base + InternalChildOffset(page_size, 0);
      for (uint32_t i = 0; i < idx; ++i) {
        V s;
        std::memcpy(&s, recs + size_t{i} * kInternalRec + 8, sizeof(V));
        *out += s;
      }
      std::memcpy(&pid, recs + size_t{idx} * kInternalRec, sizeof(PageId));
    }
  }

  /// Batched dominance sums: outs[i] = sum of values over keys <= qs[i],
  /// bit-identical to `count` independent DominanceSum calls — every probe
  /// performs the same per-node additions in the same order; only the
  /// traversal order across probes and the page-fetch count change. Probes
  /// are routed in sorted key order and grouped by child, so each tree page
  /// is fetched and pinned at most once per batch. With count == 1 the
  /// fetch/pin sequence is exactly DominanceSum's (seed I/O fidelity).
  Status DominanceSumBatch(const double* qs, size_t count, V* outs,
                           unsigned obs_level = 0) const {
    for (size_t i = 0; i < count; ++i) outs[i] = V{};
    if (root_ == kInvalidPageId || count == 0) return Status::OK();
    core::ArenaScope scope(core::ScratchArena());
    core::ArenaVector<uint32_t> order(count);
    for (size_t i = 0; i < count; ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order.begin(), order.end(), [qs](uint32_t a, uint32_t b) {
      if (qs[a] != qs[b]) return qs[a] < qs[b];
      return a < b;
    });
    return DominanceBatchRec(root_, order.data(), count, qs, outs, obs_level);
  }

  // LINT:hot-path-end
  /// Sum of all values in the tree.
  Status TotalSum(V* out) const {
    *out = V{};
    if (root_ == kInvalidPageId) return Status::OK();
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(root_, &g));
    const Page* p = g.page();
    uint32_t n = Count(p);
    if (Type(p) == kLeaf) {
      for (uint32_t i = 0; i < n; ++i) {
        V v;
        ReadLeafValue(p, i, &v);
        *out += v;
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        V s;
        ReadInternalSum(p, i, &s);
        *out += s;
      }
    }
    return Status::OK();
  }

  /// Appends every (key, value) entry in ascending key order.
  Status ScanAll(std::vector<Entry>* out) const {
    if (root_ == kInvalidPageId) return Status::OK();
    return ScanRec(root_, out);
  }

  /// Number of distinct keys stored.
  Status CountEntries(uint64_t* out) const {
    *out = 0;
    if (root_ == kInvalidPageId) return Status::OK();
    return CountRec(root_, out);
  }

  /// Number of pages owned by the tree.
  Status PageCount(uint64_t* out) const {
    *out = 0;
    if (root_ == kInvalidPageId) return Status::OK();
    return PageCountRec(root_, out);
  }

  /// Builds a tree from entries sorted by strictly increasing key. The tree
  /// must be empty. Pages are filled to `fill` fraction of capacity.
  Status BulkLoad(const std::vector<Entry>& sorted, double fill = 1.0) {
    return BulkLoadParallel(sorted, nullptr, fill);
  }

  /// BulkLoad with leaf construction fanned out over `tpool` (sample-sorted
  /// input is already ordered, so leaves are independent byte-filling jobs).
  /// Leaf pages are staged in private buffers in parallel, then committed
  /// through the pool serially in leaf order — BufferPool::New is not
  /// thread-safe, and serial commit keeps the pool operation sequence, page
  /// ids and resulting tree bit-identical to the serial build. A null pool
  /// IS the serial build.
  Status BulkLoadParallel(const std::vector<Entry>& sorted,
                          exec::ThreadPool* tpool, double fill = 1.0) {
    BOXAGG_RETURN_NOT_OK(RequireWritable());
    if (root_ != kInvalidPageId) {
      return Status::InvalidArgument("BulkLoad into non-empty tree");
    }
    if (!PageSizeViable(pool_->file()->page_size())) {
      return Status::InvalidArgument("page size too small for value type");
    }
    if (sorted.empty()) return Status::OK();
    const uint32_t page_size = pool_->file()->page_size();
    uint32_t leaf_target = std::max<uint32_t>(
        1, static_cast<uint32_t>(LeafCapacity(page_size) * fill));
    // Level 0: carve leaf ranges, stage their pages, commit in order.
    struct Up {
      double lowkey;
      PageId pid;
      V sum;
    };
    struct Range {
      size_t begin;
      uint32_t take;
    };
    std::vector<Range> ranges;
    size_t i = 0;
    while (i < sorted.size()) {
      size_t take = std::min<size_t>(leaf_target, sorted.size() - i);
      // Avoid a dangling undersized final leaf.
      if (sorted.size() - i - take > 0 && sorted.size() - i - take < 2 &&
          take > 2) {
        take -= 1;
      }
      ranges.push_back(Range{i, static_cast<uint32_t>(take)});
      i += take;
    }
    std::vector<Up> level(ranges.size());
    {
      std::vector<Page> staged;
      staged.reserve(ranges.size());
      for (size_t r = 0; r < ranges.size(); ++r) staged.emplace_back(page_size);
      exec::ParallelFor(tpool, ranges.size(), [&](size_t r) {
        Page* pg = &staged[r];
        SetHeader(pg, kLeaf, ranges[r].take);
        V sum{};
        for (uint32_t k = 0; k < ranges[r].take; ++k) {
          const Entry& e = sorted[ranges[r].begin + k];
          WriteLeafEntry(pg, k, e.key, e.value);
          sum += e.value;
        }
        level[r] = Up{sorted[ranges[r].begin].key, kInvalidPageId, sum};
      });
      for (size_t r = 0; r < ranges.size(); ++r) {
        PageGuard g;
        BOXAGG_RETURN_NOT_OK(pool_->New(&g));
        std::memcpy(g.page()->data(), staged[r].data(), page_size);
        g.MarkDirty();
        level[r].pid = g.id();
      }
    }
    // Upper levels: a tiny fraction of the pages; built serially.
    uint32_t internal_target = std::max<uint32_t>(
        2, static_cast<uint32_t>(InternalCapacity(page_size) * fill));
    while (level.size() > 1) {
      std::vector<Up> next;
      size_t j = 0;
      while (j < level.size()) {
        size_t take = std::min<size_t>(internal_target, level.size() - j);
        if (level.size() - j - take > 0 && level.size() - j - take < 2 &&
            take > 2) {
          take -= 1;
        }
        PageGuard g;
        BOXAGG_RETURN_NOT_OK(pool_->New(&g));
        SetHeader(g.page(), kInternal, static_cast<uint32_t>(take));
        V sum{};
        for (size_t k = 0; k < take; ++k) {
          const Up& u = level[j + k];
          WriteInternalEntry(g.page(), static_cast<uint32_t>(k), u.lowkey,
                             u.pid, u.sum);
          sum += u.sum;
        }
        g.MarkDirty();
        next.push_back(Up{level[j].lowkey, g.id(), sum});
        j += take;
      }
      level = std::move(next);
    }
    root_ = level[0].pid;
    return Status::OK();
  }

  /// Frees every page of the tree; the handle becomes empty.
  Status Destroy() {
    BOXAGG_RETURN_NOT_OK(RequireWritable());
    if (root_ == kInvalidPageId) return Status::OK();
    BOXAGG_RETURN_NOT_OK(DestroyRec(root_));
    root_ = kInvalidPageId;
    return Status::OK();
  }

  /// Deep structural audit: page types, fill bounds, strictly increasing
  /// keys/lowkeys, routing bounds (every subtree's keys stay inside its
  /// record's [lowkey_i, lowkey_{i+1}) range; entry 0's lowkey acts as
  /// -infinity), uniform leaf depth, and the subtree-sum identity every
  /// internal record must satisfy for DominanceSum's prefix shortcut to be
  /// correct. Pass a shared `ctx` to audit several structures over one file
  /// (cross-structure page-ownership checks); nullptr uses a local context.
  Status CheckConsistency(CheckContext* ctx = nullptr) const {
    CheckContext local;
    if (ctx == nullptr) ctx = &local;
    if (root_ == kInvalidPageId) return Status::OK();
    SubtreeFacts facts;
    return CheckRec(root_, /*is_root=*/true, ctx, &facts);
  }

 private:
  // The replica builder snapshots nodes through the raw accessors below.
  template <class>
  friend class ReplicaBuilder;

  static constexpr uint16_t kLeaf = 1;
  static constexpr uint16_t kInternal = 2;
  static constexpr uint32_t kHeaderSize = 8;
  // Per-entry page budget (determines capacity; the strips split these bytes
  // into key and payload parts).
  static constexpr uint32_t kLeafEntrySize = 8 + sizeof(V);
  static constexpr uint32_t kInternalEntrySize = 16 + sizeof(V);
  // Stride of one { child, sum } record in the internal payload strip.
  static constexpr uint32_t kInternalRec = 8 + sizeof(V);

  struct SplitResult {
    bool happened = false;
    PageId right_page = kInvalidPageId;
    double left_lowkey = 0.0;
    double right_lowkey = 0.0;
    V left_sum{};
    V right_sum{};
  };

  /// A handle bound to a pinned generation serves reads only.
  Status RequireWritable() const {
    return view_ == nullptr
               ? Status::OK()
               : Status::InvalidArgument(
                     "mutation through a snapshot-bound tree handle");
  }

  /// Node fetch: live page table, or the pinned generation when this
  /// handle carries a view.
  Status FetchNode(PageId pid, PageGuard* g) const {
    return view_ != nullptr ? pool_->FetchSnapshot(*view_, pid, g)
                            : pool_->Fetch(pid, g);
  }
  void PrefetchNode(PageId pid) const {
    if (view_ != nullptr) {
      pool_->PrefetchSnapshotHint(*view_, pid);
    } else {
      pool_->PrefetchHint(pid);
    }
  }

  // ---- page accessors -----------------------------------------------------
  // The key strips are page-size independent (they start right after the
  // header), so key accessors stay static; payload accessors live behind the
  // capacity split and need the page size from the pool.

  static void SetHeader(Page* p, uint16_t type, uint32_t count) {
    p->WriteAt<uint16_t>(0, type);
    p->WriteAt<uint16_t>(2, 0);
    p->WriteAt<uint32_t>(4, count);
  }
  static uint16_t Type(const Page* p) { return p->ReadAt<uint16_t>(0); }
  static uint32_t Count(const Page* p) { return p->ReadAt<uint32_t>(4); }
  static void SetCount(Page* p, uint32_t c) { p->WriteAt<uint32_t>(4, c); }

  [[nodiscard]] uint32_t PageSz() const { return pool_->file()->page_size(); }

  static double LeafKey(const Page* p, uint32_t i) {
    return p->ReadAt<double>(LeafKeyOffset(i));
  }
  void ReadLeafValue(const Page* p, uint32_t i, V* v) const {
    p->ReadBytes(LeafValueOffset(PageSz(), i), v, sizeof(V));
  }
  void WriteLeafEntry(Page* p, uint32_t i, double key, const V& v) const {
    p->WriteAt<double>(LeafKeyOffset(i), key);
    p->WriteBytes(LeafValueOffset(PageSz(), i), &v, sizeof(V));
  }

  static double InternalLowKey(const Page* p, uint32_t i) {
    return p->ReadAt<double>(InternalLowKeyOffset(i));
  }
  PageId InternalChild(const Page* p, uint32_t i) const {
    return p->ReadAt<uint64_t>(InternalChildOffset(PageSz(), i));
  }
  void ReadInternalSum(const Page* p, uint32_t i, V* v) const {
    p->ReadBytes(InternalSumOffset(PageSz(), i), v, sizeof(V));
  }
  void WriteInternalEntry(Page* p, uint32_t i, double lowkey, PageId child,
                          const V& sum) const {
    p->WriteAt<double>(InternalLowKeyOffset(i), lowkey);
    p->WriteAt<uint64_t>(InternalChildOffset(PageSz(), i), child);
    p->WriteBytes(InternalSumOffset(PageSz(), i), &sum, sizeof(V));
  }
  void WriteInternalSum(Page* p, uint32_t i, const V& sum) const {
    p->WriteBytes(InternalSumOffset(PageSz(), i), &sum, sizeof(V));
  }

  /// Index of the child subtree that covers key `q`: the last entry with
  /// lowkey <= q, except that entry 0 covers everything below lowkey_1.
  /// simd::FirstGreater over entries [1, n) returns the first lowkey > q
  /// relative to entry 1; that count is exactly the covering entry's index.
  static uint32_t RouteInternal(const Page* p, uint32_t n, double q) {
    const double* lowkeys =
        reinterpret_cast<const double*>(p->data() + kHeaderSize);
    return simd::FirstGreater(lowkeys + 1, n - 1, q);
  }

  // ---- mutation -----------------------------------------------------------

  Status InsertRec(PageId pid, double key, const V& v, SplitResult* split) {
    split->happened = false;
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    Page* p = g.page();
    uint32_t n = Count(p);
    const uint32_t page_size = pool_->file()->page_size();

    if (Type(p) == kLeaf) {
      // Find insertion position (first entry with key >= `key`).
      uint32_t lo = 0, hi = n;
      while (lo < hi) {
        uint32_t mid = (lo + hi) / 2;
        if (LeafKey(p, mid) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < n && LeafKey(p, lo) == key) {
        V cur;
        ReadLeafValue(p, lo, &cur);
        cur += v;
        WriteLeafEntry(p, lo, key, cur);
        g.MarkDirty();
        return Status::OK();
      }
      if (n < LeafCapacity(page_size)) {
        std::memmove(p->data() + LeafKeyOffset(lo + 1),
                     p->data() + LeafKeyOffset(lo), (n - lo) * 8);
        std::memmove(p->data() + LeafValueOffset(page_size, lo + 1),
                     p->data() + LeafValueOffset(page_size, lo),
                     (n - lo) * sizeof(V));
        WriteLeafEntry(p, lo, key, v);
        SetCount(p, n + 1);
        g.MarkDirty();
        return Status::OK();
      }
      // Split: gather, insert, redistribute halves.
      std::vector<Entry> all(n);
      for (uint32_t i = 0; i < n; ++i) {
        all[i].key = LeafKey(p, i);
        ReadLeafValue(p, i, &all[i].value);
      }
      all.insert(all.begin() + lo, Entry{key, v});
      uint32_t left_n = static_cast<uint32_t>(all.size() / 2);
      PageGuard rg;
      BOXAGG_RETURN_NOT_OK(pool_->New(&rg));
      SetHeader(p, kLeaf, left_n);
      V lsum{}, rsum{};
      for (uint32_t i = 0; i < left_n; ++i) {
        WriteLeafEntry(p, i, all[i].key, all[i].value);
        lsum += all[i].value;
      }
      uint32_t right_n = static_cast<uint32_t>(all.size()) - left_n;
      SetHeader(rg.page(), kLeaf, right_n);
      for (uint32_t i = 0; i < right_n; ++i) {
        WriteLeafEntry(rg.page(), i, all[left_n + i].key,
                       all[left_n + i].value);
        rsum += all[left_n + i].value;
      }
      g.MarkDirty();
      rg.MarkDirty();
      split->happened = true;
      split->right_page = rg.id();
      split->left_lowkey = all[0].key;
      split->right_lowkey = all[left_n].key;
      split->left_sum = lsum;
      split->right_sum = rsum;
      return Status::OK();
    }

    // Internal node.
    uint32_t idx = RouteInternal(p, n, key);
    PageId child = InternalChild(p, idx);
    // Recurse without holding this page pinned state hostage: the guard stays
    // pinned (depth pins are bounded by tree height).
    SplitResult child_split;
    BOXAGG_RETURN_NOT_OK(InsertRec(child, key, v, &child_split));
    if (!child_split.happened) {
      V s;
      ReadInternalSum(p, idx, &s);
      s += v;
      WriteInternalSum(p, idx, s);
      g.MarkDirty();
      return Status::OK();
    }
    // Child split: fix entry idx, then place the new right sibling at idx+1.
    WriteInternalEntry(p, idx, child_split.left_lowkey, child,
                       child_split.left_sum);
    if (n < InternalCapacity(page_size)) {
      std::memmove(p->data() + InternalLowKeyOffset(idx + 2),
                   p->data() + InternalLowKeyOffset(idx + 1),
                   (n - idx - 1) * 8);
      std::memmove(p->data() + InternalChildOffset(page_size, idx + 2),
                   p->data() + InternalChildOffset(page_size, idx + 1),
                   (n - idx - 1) * size_t{kInternalRec});
      WriteInternalEntry(p, idx + 1, child_split.right_lowkey,
                         child_split.right_page, child_split.right_sum);
      SetCount(p, n + 1);
      g.MarkDirty();
      return Status::OK();
    }
    // This internal node overflows too.
    struct IEntry {
      double lowkey;
      PageId child;
      V sum;
    };
    std::vector<IEntry> all(n);
    for (uint32_t i = 0; i < n; ++i) {
      all[i].lowkey = InternalLowKey(p, i);
      all[i].child = InternalChild(p, i);
      ReadInternalSum(p, i, &all[i].sum);
    }
    all.insert(all.begin() + idx + 1,
               IEntry{child_split.right_lowkey, child_split.right_page,
                      child_split.right_sum});
    uint32_t left_n = static_cast<uint32_t>(all.size() / 2);
    PageGuard rg;
    BOXAGG_RETURN_NOT_OK(pool_->New(&rg));
    SetHeader(p, kInternal, left_n);
    V lsum{}, rsum{};
    for (uint32_t i = 0; i < left_n; ++i) {
      WriteInternalEntry(p, i, all[i].lowkey, all[i].child, all[i].sum);
      lsum += all[i].sum;
    }
    uint32_t right_n = static_cast<uint32_t>(all.size()) - left_n;
    SetHeader(rg.page(), kInternal, right_n);
    for (uint32_t i = 0; i < right_n; ++i) {
      WriteInternalEntry(rg.page(), i, all[left_n + i].lowkey,
                         all[left_n + i].child, all[left_n + i].sum);
      rsum += all[left_n + i].sum;
    }
    g.MarkDirty();
    rg.MarkDirty();
    split->happened = true;
    split->right_page = rg.id();
    split->left_lowkey = all[0].lowkey;
    split->right_lowkey = all[left_n].lowkey;
    split->left_sum = lsum;
    split->right_sum = rsum;
    return Status::OK();
  }

  // ---- traversal ----------------------------------------------------------

  // LINT:hot-path — descent: no heap allocation past warm-up (lint.sh)
  /// One node of the batched descent: `idx[0..m)` are probe indices sorted
  /// by key whose paths all pass through `pid`. The node is fetched once;
  /// per-probe arithmetic matches DominanceSum exactly. The pin is dropped
  /// before descending, like the sequential loop's per-iteration guard.
  /// Scratch comes from the thread-local arena (zero heap traffic once
  /// warm); before descending into a group, the next group's child page is
  /// software-prefetched so its header and key strip are in cache when its
  /// turn comes.
  Status DominanceBatchRec(PageId pid, const uint32_t* idx, size_t m,
                           const double* qs, V* outs,
                           unsigned obs_level = 0) const {
    struct Group {
      PageId child;
      size_t begin;
      size_t end;
    };
    core::ArenaScope scope(core::ScratchArena());
    core::ArenaVector<Group> groups;
    {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
      obs::NoteNodeVisit(obs_level);
      if (m > 1) pool_->NoteProbeFetchesSaved(m - 1);
      const Page* p = g.page();
      const uint8_t* base = p->data();
      const uint32_t page_size = pool_->file()->page_size();
      uint32_t n = Count(p);
      if (Type(p) == kLeaf) {
        const double* keys =
            reinterpret_cast<const double*>(base + kHeaderSize);
        const uint8_t* vals = base + LeafValueOffset(page_size, 0);
        for (size_t j = 0; j < m; ++j) {
          const double q = qs[idx[j]];
          V* out = &outs[idx[j]];
          const uint32_t cut = simd::FirstGreater(keys, n, q);
          for (uint32_t i = 0; i < cut; ++i) {
            V v;
            std::memcpy(&v, vals + size_t{i} * sizeof(V), sizeof(V));
            *out += v;
          }
        }
        return Status::OK();
      }
      // Sorted probes route monotonically, so per-child groups are
      // contiguous runs of idx.
      const uint8_t* recs = base + InternalChildOffset(page_size, 0);
      size_t j = 0;
      while (j < m) {
        const uint32_t route = RouteInternal(p, n, qs[idx[j]]);
        size_t k = j + 1;
        while (k < m && RouteInternal(p, n, qs[idx[k]]) == route) ++k;
        for (size_t t = j; t < k; ++t) {
          V* out = &outs[idx[t]];
          for (uint32_t i = 0; i < route; ++i) {
            V s;
            std::memcpy(&s, recs + size_t{i} * kInternalRec + 8, sizeof(V));
            *out += s;
          }
        }
        PageId child;
        std::memcpy(&child, recs + size_t{route} * kInternalRec,
                    sizeof(PageId));
        groups.push_back(Group{child, j, k});
        j = k;
      }
    }
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      if (gi + 1 < groups.size()) PrefetchNode(groups[gi + 1].child);
      const Group& gr = groups[gi];
      BOXAGG_RETURN_NOT_OK(DominanceBatchRec(gr.child, idx + gr.begin,
                                             gr.end - gr.begin, qs, outs,
                                             obs_level + 1));
    }
    return Status::OK();
  }

  // LINT:hot-path-end
  Status ScanRec(PageId pid, std::vector<Entry>* out) const {
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    const Page* p = g.page();
    uint32_t n = Count(p);
    if (Type(p) == kLeaf) {
      for (uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.key = LeafKey(p, i);
        ReadLeafValue(p, i, &e.value);
        out->push_back(e);
      }
      return Status::OK();
    }
    for (uint32_t i = 0; i < n; ++i) {
      PageId child = InternalChild(p, i);
      BOXAGG_RETURN_NOT_OK(ScanRec(child, out));
    }
    return Status::OK();
  }

  Status CountRec(PageId pid, uint64_t* out) const {
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    const Page* p = g.page();
    uint32_t n = Count(p);
    if (Type(p) == kLeaf) {
      *out += n;
      return Status::OK();
    }
    for (uint32_t i = 0; i < n; ++i) {
      BOXAGG_RETURN_NOT_OK(CountRec(InternalChild(p, i), out));
    }
    return Status::OK();
  }

  Status PageCountRec(PageId pid, uint64_t* out) const {
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    const Page* p = g.page();
    *out += 1;
    if (Type(p) == kInternal) {
      uint32_t n = Count(p);
      for (uint32_t i = 0; i < n; ++i) {
        BOXAGG_RETURN_NOT_OK(PageCountRec(InternalChild(p, i), out));
      }
    }
    return Status::OK();
  }

  // ---- verification -------------------------------------------------------

  /// What CheckRec learns about a subtree, checked against the parent record.
  struct SubtreeFacts {
    double min_key = 0.0;
    double max_key = 0.0;
    V sum{};
    uint32_t depth = 0;  // 0 at leaves; must be uniform across siblings
  };

  Status CheckRec(PageId pid, bool is_root, CheckContext* ctx,
                  SubtreeFacts* out) const {
    BOXAGG_RETURN_NOT_OK(ctx->Visit(pid, "agg-btree"));
    PageGuard g;
    BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
    const Page* p = g.page();
    const uint16_t type = Type(p);
    if (type != kLeaf && type != kInternal) {
      return CorruptionAt(pid,
                          "agg-btree: bad node type " + std::to_string(type));
    }
    const uint32_t page_size = pool_->file()->page_size();
    const uint32_t cap =
        type == kLeaf ? LeafCapacity(page_size) : InternalCapacity(page_size);
    const uint32_t n = Count(p);
    if (n == 0 || n > cap) {
      return CorruptionAt(pid, "agg-btree: entry count " + std::to_string(n) +
                                   " outside [1, " + std::to_string(cap) +
                                   "]");
    }
    if (!is_root && n < 2) {
      return CorruptionAt(pid, "agg-btree: underfull non-root node");
    }

    if (type == kLeaf) {
      out->sum = V{};
      for (uint32_t i = 0; i < n; ++i) {
        if (i > 0 && !(LeafKey(p, i - 1) < LeafKey(p, i))) {
          return CorruptionAt(
              pid, "agg-btree: leaf keys not strictly increasing at entry " +
                       std::to_string(i));
        }
        V v;
        ReadLeafValue(p, i, &v);
        out->sum += v;
      }
      out->min_key = LeafKey(p, 0);
      out->max_key = LeafKey(p, n - 1);
      out->depth = 0;
      return Status::OK();
    }

    out->sum = V{};
    for (uint32_t i = 0; i < n; ++i) {
      const double lowkey = InternalLowKey(p, i);
      if (i > 0 && !(InternalLowKey(p, i - 1) < lowkey)) {
        return CorruptionAt(
            pid, "agg-btree: internal lowkeys not strictly increasing at "
                 "entry " +
                     std::to_string(i));
      }
      SubtreeFacts child;
      BOXAGG_RETURN_NOT_OK(
          CheckRec(InternalChild(p, i), /*is_root=*/false, ctx, &child));
      // Entry 0's lowkey can be stale after inserts of smaller keys (routing
      // treats it as -infinity), so only entries i >= 1 bound from below.
      if (i > 0 && child.min_key < lowkey) {
        return CorruptionAt(pid, "agg-btree: subtree of entry " +
                                     std::to_string(i) +
                                     " holds a key below its lowkey");
      }
      if (i + 1 < n && child.max_key >= InternalLowKey(p, i + 1)) {
        return CorruptionAt(pid, "agg-btree: subtree of entry " +
                                     std::to_string(i) +
                                     " reaches into the next record's range");
      }
      V stored;
      ReadInternalSum(p, i, &stored);
      if (AggDrift(stored, child.sum) > kAggDriftTolerance) {
        return CorruptionAt(pid, "agg-btree: record aggregate of entry " +
                                     std::to_string(i) +
                                     " != recomputed subtree sum");
      }
      if (i == 0) {
        out->depth = child.depth + 1;
        out->min_key = child.min_key;
      } else if (child.depth + 1 != out->depth) {
        return CorruptionAt(pid, "agg-btree: leaves at unequal depths");
      }
      out->max_key = child.max_key;
      out->sum += child.sum;
    }
    return Status::OK();
  }

  Status DestroyRec(PageId pid) {
    std::vector<PageId> children;
    {
      PageGuard g;
      BOXAGG_RETURN_NOT_OK(FetchNode(pid, &g));
      const Page* p = g.page();
      if (Type(p) == kInternal) {
        uint32_t n = Count(p);
        children.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          children.push_back(InternalChild(p, i));
        }
      }
    }
    for (PageId c : children) {
      BOXAGG_RETURN_NOT_OK(DestroyRec(c));
    }
    return pool_->Delete(pid);
  }

  BufferPool* pool_;
  PageId root_;
  const PageVersionView* view_ = nullptr;  // non-null: snapshot-bound reads
};

}  // namespace boxagg

#endif  // BOXAGG_BPTREE_AGG_BTREE_H_
