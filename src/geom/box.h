// Box: a d-dimensional axis-aligned rectangle described by its low and high
// corner points (Sec. 2).
//
// Data objects and queries are closed boxes [lo, hi]; two boxes intersect
// when their projections overlap in every dimension. Index-space partitioning
// (k-d-B regions) instead uses the half-open ContainsHalfOpen predicate so
// every point belongs to exactly one region.

#ifndef BOXAGG_GEOM_BOX_H_
#define BOXAGG_GEOM_BOX_H_

#include <algorithm>
#include <string>

#include "geom/point.h"

namespace boxagg {

/// \brief Axis-aligned d-dimensional box, trivially copyable.
struct Box {
  Point lo;  ///< dominated by every corner of the box
  Point hi;  ///< dominates every corner of the box

  Box() = default;
  Box(const Point& low, const Point& high) : lo(low), hi(high) {}

  bool operator==(const Box& o) const { return lo == o.lo && hi == o.hi; }

  /// True iff this box and `o` intersect (closed semantics) in the first
  /// `dims` dimensions.
  bool Intersects(const Box& o, int dims) const {
    for (int i = 0; i < dims; ++i) {
      if (hi[i] < o.lo[i] || o.hi[i] < lo[i]) return false;
    }
    return true;
  }

  /// True iff `o` lies entirely within this box (closed semantics).
  bool Contains(const Box& o, int dims) const {
    for (int i = 0; i < dims; ++i) {
      if (o.lo[i] < lo[i] || o.hi[i] > hi[i]) return false;
    }
    return true;
  }

  /// True iff point `p` is inside the closed box.
  bool ContainsPoint(const Point& p, int dims) const {
    for (int i = 0; i < dims; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }

  /// True iff point `p` is inside the half-open region [lo, hi). This is the
  /// partitioning predicate of k-d-B regions.
  bool ContainsPointHalfOpen(const Point& p, int dims) const {
    for (int i = 0; i < dims; ++i) {
      if (p[i] < lo[i] || p[i] >= hi[i]) return false;
    }
    return true;
  }

  /// Intersection of two boxes; valid only if Intersects().
  Box Intersection(const Box& o, int dims) const {
    Box r = *this;
    for (int i = 0; i < dims; ++i) {
      r.lo[i] = std::max(lo[i], o.lo[i]);
      r.hi[i] = std::min(hi[i], o.hi[i]);
    }
    return r;
  }

  /// Smallest box covering both this and `o`.
  Box Union(const Box& o, int dims) const {
    Box r = *this;
    for (int i = 0; i < dims; ++i) {
      r.lo[i] = std::min(lo[i], o.lo[i]);
      r.hi[i] = std::max(hi[i], o.hi[i]);
    }
    return r;
  }

  /// Product of side lengths over the first `dims` dimensions.
  double Volume(int dims) const {
    double v = 1.0;
    for (int i = 0; i < dims; ++i) v *= (hi[i] - lo[i]);
    return v;
  }

  /// Sum of side lengths (the R*-tree "margin" heuristic).
  double Margin(int dims) const {
    double m = 0.0;
    for (int i = 0; i < dims; ++i) m += (hi[i] - lo[i]);
    return m;
  }

  /// Corner `mask` of the box: bit i of `mask` selects hi (1) or lo (0) in
  /// dimension i. Used by the 2^d corner reductions of Secs. 2-3.
  Point Corner(uint32_t mask, int dims) const {
    Point p;
    for (int i = 0; i < dims; ++i) {
      p[i] = (mask >> i) & 1u ? hi[i] : lo[i];
    }
    return p;
  }

  /// Box with dimension `drop` removed in both corners.
  Box DropDim(int drop, int dims) const {
    return Box(lo.DropDim(drop, dims), hi.DropDim(drop, dims));
  }

  /// The whole space [-inf, +inf]^dims.
  static Box Universe(int dims) {
    return Box(Point::MinPoint(dims), Point::MaxPoint(dims));
  }

  std::string ToString(int dims) const {
    return "[" + lo.ToString(dims) + " .. " + hi.ToString(dims) + "]";
  }
};

static_assert(std::is_trivially_copyable_v<Box>);

}  // namespace boxagg

#endif  // BOXAGG_GEOM_BOX_H_
