// Point: a d-dimensional point with the dominance relation from Sec. 2 of the
// paper.
//
// Dimension is a runtime property (the trees recurse from d to d-1), bounded
// by kMaxDims so that points are fixed-size, trivially copyable records that
// serialize into pages by memcpy.

#ifndef BOXAGG_GEOM_POINT_H_
#define BOXAGG_GEOM_POINT_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

namespace boxagg {

/// Maximum supported dimensionality of indexed space.
inline constexpr int kMaxDims = 4;

/// \brief d-dimensional point (d <= kMaxDims), fixed-size and trivially
/// copyable.
///
/// Unused trailing coordinates are zero so that equality and hashing are
/// well defined regardless of the runtime dimension in play.
struct Point {
  std::array<double, kMaxDims> coord{};

  Point() = default;
  Point(double x, double y) : coord{x, y, 0, 0} {}
  Point(double x, double y, double z) : coord{x, y, z, 0} {}
  explicit Point(double x) : coord{x, 0, 0, 0} {}

  double operator[](int i) const {
    assert(i >= 0 && i < kMaxDims);
    return coord[static_cast<size_t>(i)];
  }
  double& operator[](int i) {
    assert(i >= 0 && i < kMaxDims);
    return coord[static_cast<size_t>(i)];
  }

  bool operator==(const Point& o) const { return coord == o.coord; }

  /// True iff this point dominates `q` in the first `dims` dimensions:
  /// this[i] >= q[i] for all i (Sec. 2). Dominance is non-strict.
  [[nodiscard]] bool Dominates(const Point& q, int dims) const {
    for (int i = 0; i < dims; ++i) {
      if (coord[static_cast<size_t>(i)] < q.coord[static_cast<size_t>(i)]) {
        return false;
      }
    }
    return true;
  }

  /// Returns this point with dimension `drop` removed (dimensions above it
  /// shift down by one). Used when projecting into a (d-1)-dim border tree.
  [[nodiscard]] Point DropDim(int drop, int dims) const {
    assert(drop >= 0 && drop < dims);
    Point r;
    int k = 0;
    for (int i = 0; i < dims; ++i) {
      if (i == drop) continue;
      r.coord[static_cast<size_t>(k++)] = coord[static_cast<size_t>(i)];
    }
    return r;
  }

  /// Inverse of DropDim: returns this (dims-1)-dimensional point with `value`
  /// spliced in at dimension `at` (dimensions at and above shift up by one).
  [[nodiscard]] Point InsertDim(int at, double value, int dims) const {
    assert(at >= 0 && at < dims);
    Point r;
    int k = 0;
    for (int i = 0; i < dims; ++i) {
      r.coord[static_cast<size_t>(i)] =
          (i == at) ? value : coord[static_cast<size_t>(k++)];
    }
    return r;
  }

  /// Point at -infinity in the first `dims` dimensions (the paper's p_min).
  static Point MinPoint(int dims) {
    Point p;
    for (int i = 0; i < dims; ++i) {
      p[i] = -std::numeric_limits<double>::infinity();
    }
    return p;
  }

  /// Point at +infinity in the first `dims` dimensions (the paper's p_max).
  static Point MaxPoint(int dims) {
    Point p;
    for (int i = 0; i < dims; ++i) {
      p[i] = std::numeric_limits<double>::infinity();
    }
    return p;
  }

  [[nodiscard]] std::string ToString(int dims) const {
    std::ostringstream os;
    os << "(";
    for (int i = 0; i < dims; ++i) {
      if (i) os << ", ";
      os << coord[static_cast<size_t>(i)];
    }
    os << ")";
    return os.str();
  }
};

static_assert(std::is_trivially_copyable_v<Point>);

}  // namespace boxagg

#endif  // BOXAGG_GEOM_POINT_H_
