# Empty compiler generated dependencies file for fleet_telemetry.
# This may be replaced when dependencies are built.
