file(REMOVE_RECURSE
  "CMakeFiles/fleet_telemetry.dir/fleet_telemetry.cpp.o"
  "CMakeFiles/fleet_telemetry.dir/fleet_telemetry.cpp.o.d"
  "fleet_telemetry"
  "fleet_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
