# Empty compiler generated dependencies file for pesticide_gis.
# This may be replaced when dependencies are built.
