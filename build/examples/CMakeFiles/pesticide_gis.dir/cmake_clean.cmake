file(REMOVE_RECURSE
  "CMakeFiles/pesticide_gis.dir/pesticide_gis.cpp.o"
  "CMakeFiles/pesticide_gis.dir/pesticide_gis.cpp.o.d"
  "pesticide_gis"
  "pesticide_gis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pesticide_gis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
