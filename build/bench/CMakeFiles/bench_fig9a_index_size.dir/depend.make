# Empty dependencies file for bench_fig9a_index_size.
# This may be replaced when dependencies are built.
