# Empty dependencies file for bench_plain_rtree.
# This may be replaced when dependencies are built.
