file(REMOVE_RECURSE
  "CMakeFiles/bench_plain_rtree.dir/bench_plain_rtree.cpp.o"
  "CMakeFiles/bench_plain_rtree.dir/bench_plain_rtree.cpp.o.d"
  "bench_plain_rtree"
  "bench_plain_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plain_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
