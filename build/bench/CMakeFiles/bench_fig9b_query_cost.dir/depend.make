# Empty dependencies file for bench_fig9b_query_cost.
# This may be replaced when dependencies are built.
