# Empty compiler generated dependencies file for bench_fig9c_functional.
# This may be replaced when dependencies are built.
