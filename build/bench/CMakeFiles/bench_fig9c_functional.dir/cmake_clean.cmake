file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9c_functional.dir/bench_fig9c_functional.cpp.o"
  "CMakeFiles/bench_fig9c_functional.dir/bench_fig9c_functional.cpp.o.d"
  "bench_fig9c_functional"
  "bench_fig9c_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
