file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_borders.dir/bench_ablation_borders.cpp.o"
  "CMakeFiles/bench_ablation_borders.dir/bench_ablation_borders.cpp.o.d"
  "bench_ablation_borders"
  "bench_ablation_borders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_borders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
