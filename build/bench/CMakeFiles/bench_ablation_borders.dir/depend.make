# Empty dependencies file for bench_ablation_borders.
# This may be replaced when dependencies are built.
