file(REMOVE_RECURSE
  "CMakeFiles/bench_cube_rangesum.dir/bench_cube_rangesum.cpp.o"
  "CMakeFiles/bench_cube_rangesum.dir/bench_cube_rangesum.cpp.o.d"
  "bench_cube_rangesum"
  "bench_cube_rangesum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cube_rangesum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
