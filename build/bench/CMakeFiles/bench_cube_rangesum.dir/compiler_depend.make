# Empty compiler generated dependencies file for bench_cube_rangesum.
# This may be replaced when dependencies are built.
