file(REMOVE_RECURSE
  "libboxagg.a"
)
