# Empty dependencies file for boxagg.
# This may be replaced when dependencies are built.
