file(REMOVE_RECURSE
  "CMakeFiles/boxagg.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/boxagg.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/boxagg.dir/storage/page_file.cc.o"
  "CMakeFiles/boxagg.dir/storage/page_file.cc.o.d"
  "CMakeFiles/boxagg.dir/workload/generators.cc.o"
  "CMakeFiles/boxagg.dir/workload/generators.cc.o.d"
  "libboxagg.a"
  "libboxagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boxagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
