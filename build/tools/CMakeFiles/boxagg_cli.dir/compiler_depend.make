# Empty compiler generated dependencies file for boxagg_cli.
# This may be replaced when dependencies are built.
