file(REMOVE_RECURSE
  "CMakeFiles/boxagg_cli.dir/boxagg_cli.cpp.o"
  "CMakeFiles/boxagg_cli.dir/boxagg_cli.cpp.o.d"
  "boxagg_cli"
  "boxagg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boxagg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
