file(REMOVE_RECURSE
  "CMakeFiles/ba_tree_test.dir/ba_tree_test.cpp.o"
  "CMakeFiles/ba_tree_test.dir/ba_tree_test.cpp.o.d"
  "ba_tree_test"
  "ba_tree_test.pdb"
  "ba_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
