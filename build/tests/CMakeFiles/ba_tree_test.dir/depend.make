# Empty dependencies file for ba_tree_test.
# This may be replaced when dependencies are built.
