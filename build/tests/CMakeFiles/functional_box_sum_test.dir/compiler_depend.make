# Empty compiler generated dependencies file for functional_box_sum_test.
# This may be replaced when dependencies are built.
