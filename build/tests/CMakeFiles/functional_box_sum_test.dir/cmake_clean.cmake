file(REMOVE_RECURSE
  "CMakeFiles/functional_box_sum_test.dir/functional_box_sum_test.cpp.o"
  "CMakeFiles/functional_box_sum_test.dir/functional_box_sum_test.cpp.o.d"
  "functional_box_sum_test"
  "functional_box_sum_test.pdb"
  "functional_box_sum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_box_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
