# Empty compiler generated dependencies file for packed_ba_tree_test.
# This may be replaced when dependencies are built.
