# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for packed_ba_tree_test.
