file(REMOVE_RECURSE
  "CMakeFiles/packed_ba_tree_test.dir/packed_ba_tree_test.cpp.o"
  "CMakeFiles/packed_ba_tree_test.dir/packed_ba_tree_test.cpp.o.d"
  "packed_ba_tree_test"
  "packed_ba_tree_test.pdb"
  "packed_ba_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_ba_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
