file(REMOVE_RECURSE
  "CMakeFiles/unbounded_query_test.dir/unbounded_query_test.cpp.o"
  "CMakeFiles/unbounded_query_test.dir/unbounded_query_test.cpp.o.d"
  "unbounded_query_test"
  "unbounded_query_test.pdb"
  "unbounded_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unbounded_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
