# Empty compiler generated dependencies file for unbounded_query_test.
# This may be replaced when dependencies are built.
