file(REMOVE_RECURSE
  "CMakeFiles/agg_btree_test.dir/agg_btree_test.cpp.o"
  "CMakeFiles/agg_btree_test.dir/agg_btree_test.cpp.o.d"
  "agg_btree_test"
  "agg_btree_test.pdb"
  "agg_btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
