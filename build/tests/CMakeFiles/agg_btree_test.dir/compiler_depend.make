# Empty compiler generated dependencies file for agg_btree_test.
# This may be replaced when dependencies are built.
