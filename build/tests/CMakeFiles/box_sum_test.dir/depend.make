# Empty dependencies file for box_sum_test.
# This may be replaced when dependencies are built.
