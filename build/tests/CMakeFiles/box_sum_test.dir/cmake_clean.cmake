file(REMOVE_RECURSE
  "CMakeFiles/box_sum_test.dir/box_sum_test.cpp.o"
  "CMakeFiles/box_sum_test.dir/box_sum_test.cpp.o.d"
  "box_sum_test"
  "box_sum_test.pdb"
  "box_sum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/box_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
