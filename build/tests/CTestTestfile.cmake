# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/agg_btree_test[1]_include.cmake")
include("/root/repo/build/tests/ecdf_test[1]_include.cmake")
include("/root/repo/build/tests/ba_tree_test[1]_include.cmake")
include("/root/repo/build/tests/packed_ba_tree_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/box_sum_test[1]_include.cmake")
include("/root/repo/build/tests/functional_box_sum_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cube_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/unbounded_query_test[1]_include.cmake")
